"""The multi-tenant serving loop.

``TenantService`` generalizes :class:`~repro.serve.daemon.ServeDaemon`
from one verifier/one stream to a fleet: every tenant directory under
the service root gets its own :class:`~repro.serve.engine.BatchEngine`
(verifier, breaker, retry budget, dead-letter box — a private fault
domain), while the service owns what is genuinely shared:

- the **admission layer**: one bounded queue per tenant, filled by
  pulling that tenant's stream (backpressure) or by push submissions
  (:meth:`TenantService.submit`, answering load-shed when full);
- the **scheduler**: weighted-fair selection among tenants with work,
  so a heavy tenant cannot starve a light one;
- the **memory budget**: an LRU of hydrated models; cold tenants live
  as checkpoints on disk and are rehydrated on demand (single-flight);
- the shared **journal / flight recorder / introspection server**, with
  every event tenant-tagged and a ``/tenants`` endpoint for the fleet;
- **graceful degradation**: a tenant whose hydration or stream breaks
  is marked failed and skipped; everyone else keeps committing.  A
  poison batch quarantines into its tenant's private dead-letter box
  exactly as in the single-tenant daemon;
- **graceful shutdown**: SIGTERM finishes the in-flight batch, then
  checkpoints every hydrated tenant (cursor + quarantine ledger), so a
  restarted service resumes every tenant with no batch lost or applied
  twice.

The loop is cooperative and single-threaded: one batch is in flight at
a time, which keeps per-tenant transactional rollback semantics exactly
as strong as the single-tenant daemon's.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.chaos.points import crash_point
from repro.obs import (
    EVENT_CHECKPOINT,
    EVENT_START,
    EVENT_STOP,
    EVENT_TENANT_FAILED,
    EVENT_TENANT_SHED,
    EventJournal,
    FlightRecorder,
    IntrospectionServer,
    ObsState,
)
from repro.serve.engine import ServeOptions, ServeStats
from repro.serve.stream import ChangeBatch, read_stream
from repro.tenants.registry import (
    TenantConfig,
    TenantRegistry,
    discover_tenants,
)
from repro.tenants.scheduler import FairScheduler, TenantQueue
from repro.telemetry import atomic_write_text, get_metrics, names


@dataclass
class TenantServiceOptions:
    """Service-level knobs.  ``serve`` holds the per-tenant engine knobs
    (deadline, retries, backoff, breaker); its daemon-only fields
    (health/checkpoint/journal paths, obs port) are ignored here — the
    service owns those surfaces itself, fleet-wide."""

    serve: ServeOptions = field(default_factory=ServeOptions)
    #: LRU budget over hydrated verifiers (bytes); 0 = unlimited.
    memory_budget_bytes: int = 0
    #: Bound of each tenant's pending-batch queue.
    tenant_queue_capacity: int = 8
    #: Per-tenant checkpoint cadence in committed batches (0 = only on
    #: evict / shutdown).
    checkpoint_every: int = 0
    poll_interval: float = 0.2
    #: Loop iterations between control scans (evict markers, new tenant
    #: directories appearing under the root).
    control_scan_every: int = 16
    #: Stop when every tenant's stream is exhausted (False = keep
    #: polling for appended batches / new tenants until stopped).
    drain: bool = True
    health_file: Optional[Union[str, Path]] = None
    journal_file: Optional[Union[str, Path]] = None
    obs_port: Optional[int] = None
    obs_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.tenant_queue_capacity < 1:
            raise ValueError("tenant_queue_capacity must be >= 1")


class TenantService:
    """Serve every tenant directory under ``directory``, fairly."""

    def __init__(
        self,
        directory: Union[str, Path],
        options: Optional[TenantServiceOptions] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.directory = Path(directory)
        self.options = options or TenantServiceOptions()
        self._clock = clock
        self._sleep = sleep
        self._stop_requested = False
        self._installed_handlers: List = []
        self._status = "starting"
        self._iterations = 0
        self.journal = EventJournal(self.options.journal_file)
        self.recorder = FlightRecorder()
        self.journal.subscribe(self.recorder.record_event)
        self.registry = TenantRegistry(
            self.options.serve,
            journal=self.journal,
            recorder=self.recorder,
            memory_budget_bytes=self.options.memory_budget_bytes,
            clock=clock,
            sleep=sleep,
        )
        self.scheduler = FairScheduler()
        self._queues: Dict[str, TenantQueue[ChangeBatch]] = {}
        self._streams: Dict[str, Optional[Iterator[ChangeBatch]]] = {}
        self._exhausted: Dict[str, bool] = {}
        self._since_checkpoint: Dict[str, int] = {}
        for config in discover_tenants(self.directory):
            self._admit_tenant(config)
        self.obs_server: Optional[IntrospectionServer] = None
        if self.options.obs_port is not None:
            state = ObsState(
                health=self.health_payload,
                stats=self.stats_payload,
                events_since=self._events_since,
                tenants=self.tenants_payload,
            )
            self.obs_server = IntrospectionServer(
                state, host=self.options.obs_host, port=self.options.obs_port
            ).start()

    # -- membership ------------------------------------------------------------

    def _admit_tenant(self, config: TenantConfig) -> None:
        self.registry.register(config)
        self.scheduler.register(config.tenant_id, config.weight)
        self._queues[config.tenant_id] = TenantQueue(
            self.options.tenant_queue_capacity
        )
        self._streams[config.tenant_id] = None  # opened lazily
        self._exhausted[config.tenant_id] = False
        self._since_checkpoint[config.tenant_id] = 0

    def add_tenant(self, config: TenantConfig) -> None:
        """Admit a tenant mid-run (also reached by the control scan when
        a new tenant directory appears under the root)."""
        if config.tenant_id in self.registry:
            from repro.tenants.registry import TenantError

            raise TenantError(
                f"tenant {config.tenant_id} already registered"
            )
        self._admit_tenant(config)

    # -- admission -------------------------------------------------------------

    def submit(self, tenant_id: str, batch: ChangeBatch) -> bool:
        """Push-path admission: queue one batch for ``tenant_id``.

        Returns False — a **load-shed** — when the tenant's queue is
        full or the tenant has failed; the batch is the caller's to
        retry later.  Shedding is per-tenant: one tenant at its bound
        does not affect anyone else's admission."""
        state = self.registry.state(tenant_id)
        if not state.failed and self._queues[tenant_id].push(batch):
            return True
        state.shed += 1
        self._count(names.TENANT_SHED)
        self.journal.emit(
            EVENT_TENANT_SHED,
            tenant=tenant_id,
            batch=batch.batch_id,
            queue_depth=len(self._queues[tenant_id]),
            failed=state.failed,
        )
        return False

    def _refill(self, tenant_id: str) -> None:
        """Pull-path admission: read the tenant's stream into its queue,
        never further ahead than the queue bound (backpressure)."""
        state = self.registry.state(tenant_id)
        if state.failed or self._exhausted[tenant_id]:
            return
        queue = self._queues[tenant_id]
        if queue.free == 0:
            return
        stream = self._streams[tenant_id]
        if stream is None:
            stream = self._open_stream(tenant_id)
            if stream is None:
                return
        while queue.free > 0:
            try:
                batch = next(stream)
            except StopIteration:
                self._exhausted[tenant_id] = True
                break
            except Exception as error:  # noqa: BLE001 - fault containment
                self._fail_tenant(tenant_id, "stream", error)
                break
            if batch is None:
                break
            queue.push(batch)

    def _open_stream(self, tenant_id: str) -> Optional[Iterator[ChangeBatch]]:
        state = self.registry.state(tenant_id)
        path = state.config.stream_file
        if not path.exists():
            self._exhausted[tenant_id] = True
            return None
        stream = read_stream(path)
        # Resume: entries before the cursor were committed (or
        # quarantined) by a previous service instance.
        for _ in range(state.cursor):
            try:
                next(stream)
                state.stats.skipped_on_resume += 1
            except StopIteration:
                break
        self._streams[tenant_id] = stream
        return stream

    # -- the loop --------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight batch, checkpoint every hydrated tenant,
        and exit the loop."""
        self._stop_requested = True

    @property
    def stopping(self) -> bool:
        return self._stop_requested

    def install_signal_handlers(self) -> None:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(
                signum, lambda _signum, _frame: self.request_stop()
            )
            self._installed_handlers.append((signum, previous))

    def _restore_signal_handlers(self) -> None:
        while self._installed_handlers:
            signum, previous = self._installed_handlers.pop()
            signal.signal(signum, previous)

    def run(self, handle_signals: bool = False) -> Dict[str, ServeStats]:
        if handle_signals:
            self.install_signal_handlers()
        self._status = "serving"
        self.journal.emit(
            EVENT_START,
            pid=os.getpid(),
            tenants=len(self.registry),
            mode="multi-tenant",
        )
        self._write_health("serving")
        self._set_gauge(names.SERVE_HEALTHY, 1)
        try:
            while not self._stop_requested:
                self._iterations += 1
                if (
                    self.options.control_scan_every > 0
                    and self._iterations % self.options.control_scan_every == 0
                ):
                    self.scan_controls()
                for tenant_id in list(self._queues):
                    self._refill(tenant_id)
                ready = self._ready_ids()
                if not ready:
                    if self._drained():
                        break
                    self.scan_controls()
                    self._write_health("serving")
                    self._sleep(self.options.poll_interval)
                    continue
                self._serve_one(ready)
        finally:
            self._finalize(handle_signals)
        return {
            state.tenant_id: state.stats for state in self.registry.states()
        }

    def _ready_ids(self) -> List[str]:
        return [
            tenant_id
            for tenant_id, queue in self._queues.items()
            if queue and not self.registry.state(tenant_id).failed
        ]

    def _drained(self) -> bool:
        if not self.options.drain:
            return False
        return all(
            self._exhausted[tenant_id]
            or self.registry.state(tenant_id).failed
            for tenant_id in self._queues
        )

    def _serve_one(self, ready: List[str]) -> None:
        tenant_id = self.scheduler.next_tenant(ready)
        if tenant_id is None:
            return
        state = self.registry.state(tenant_id)
        batch = self._queues[tenant_id].pop()
        try:
            engine = self.registry.hydrate(tenant_id)
        except Exception as error:  # noqa: BLE001 - fault containment
            self._fail_tenant(tenant_id, "hydrate", error, batch=batch)
            return
        # Engine-level failures (poison, deadline, breaker) are contained
        # inside process_batch: it quarantines and returns False.  Only a
        # bug escaping the transactional rollback reaches the except arm,
        # and even that fails just this tenant, not the service.
        try:
            engine.process_batch(batch)
        except Exception as error:  # noqa: BLE001 - fault containment
            self._fail_tenant(tenant_id, "process", error, batch=batch)
            return
        state.cursor += 1
        crash_point("cursor.commit")
        self._since_checkpoint[tenant_id] += 1
        if (
            self.options.checkpoint_every > 0
            and self._since_checkpoint[tenant_id]
            >= self.options.checkpoint_every
        ):
            self._since_checkpoint[tenant_id] = 0
            # checkpoint_tenant already journals the failure case and
            # marks the tenant degraded; only a landed write earns the
            # checkpoint event.
            if self.registry.checkpoint_tenant(state):
                self.journal.emit(
                    EVENT_CHECKPOINT, tenant=tenant_id, cursor=state.cursor
                )
        self._write_health("serving", last_tenant=tenant_id)

    def _fail_tenant(
        self,
        tenant_id: str,
        phase: str,
        error: BaseException,
        batch: Optional[ChangeBatch] = None,
    ) -> None:
        """Blast-radius containment: the tenant is out, the fleet is not."""
        state = self.registry.state(tenant_id)
        state.failed = True
        state.last_error = f"{phase}: {type(error).__name__}: {error}"
        dropped = self._queues[tenant_id].clear()
        self.journal.emit(
            EVENT_TENANT_FAILED,
            tenant=tenant_id,
            batch=batch.batch_id if batch is not None else None,
            phase=phase,
            error_type=type(error).__name__,
            error=str(error),
            dropped=dropped,
        )
        self.registry._publish_gauges()
        # Leave the engine (if any) out of rotation but checkpoint what
        # committed so far: the cursor is still valid for a later replay.
        if state.engine is not None:
            try:
                self.registry.evict(tenant_id, reason="failed")
            except Exception:  # noqa: BLE001 - already failing
                state.engine = None

    def scan_controls(self) -> None:
        """React to operator controls: ``.evict`` markers inside tenant
        directories, and brand-new tenant directories under the root."""
        for state in self.registry.states():
            marker = state.config.evict_marker
            if marker.exists():
                try:
                    marker.unlink()
                except OSError:
                    pass
                self.registry.evict(state.tenant_id, reason="request")
        try:
            discovered = discover_tenants(self.directory)
        except Exception:  # noqa: BLE001 - racing mkdir is fine
            return
        for config in discovered:
            if config.tenant_id not in self.registry:
                self._admit_tenant(config)

    def _finalize(self, handle_signals: bool) -> None:
        # Checkpoint-and-release every hydrated tenant: the durable
        # cursor in each tenant's extras is what makes restart lossless.
        self.registry.evict_all(reason="shutdown")
        self._status = "stopped"
        totals = self._totals()
        self.journal.emit(
            EVENT_STOP,
            stopped_early=self._stop_requested,
            tenants=len(self.registry),
            batches_ok=totals["batches_ok"],
            batches_seen=totals["batches_seen"],
            quarantined=totals["quarantined"],
        )
        self._write_health("stopped")
        self._set_gauge(names.SERVE_HEALTHY, 0)
        if self.obs_server is not None:
            self.obs_server.stop()
        self.journal.close()
        if handle_signals:
            self._restore_signal_handlers()

    # -- the introspection surface ---------------------------------------------

    def _totals(self) -> Dict[str, int]:
        states = self.registry.states()
        return {
            "batches_seen": sum(s.stats.batches_seen for s in states),
            "batches_ok": sum(s.stats.batches_ok for s in states),
            "retries": sum(s.stats.retries for s in states),
            "quarantined": sum(s.stats.quarantined for s in states),
            "new_violations": sum(s.stats.new_violations for s in states),
            "shed": sum(s.shed for s in states),
            "degraded": sum(1 for s in states if s.degraded),
            "failed": sum(1 for s in states if s.failed),
            "hydrated": len(self.registry.hydrated_ids),
        }

    def tenants_payload(self) -> dict:
        """``GET /tenants``: the whole fleet, one entry per tenant."""
        return {
            "registered": len(self.registry),
            "hydrated": self.registry.hydrated_ids,
            "degraded": [
                s.tenant_id for s in self.registry.states() if s.degraded
            ],
            "memory": {
                "budget_bytes": self.registry.memory_budget_bytes,
                "footprint_bytes": self.registry.total_footprint(),
            },
            "tenants": [s.describe() for s in self.registry.states()],
        }

    def health_payload(
        self, status: Optional[str] = None, last_tenant: Optional[str] = None
    ) -> dict:
        totals = self._totals()
        payload = {
            "status": status or self._status,
            "pid": os.getpid(),
            "updated_unix": time.time(),
            "mode": "multi-tenant",
            "tenants": len(self.registry),
            "queue_depth": sum(len(q) for q in self._queues.values()),
            **totals,
        }
        if last_tenant is not None:
            self._last_tenant = last_tenant
        if getattr(self, "_last_tenant", None) is not None:
            payload["last_tenant"] = self._last_tenant
        return payload

    def stats_payload(self) -> dict:
        return {
            "totals": self._totals(),
            "tenants": {
                s.tenant_id: dict(vars(s.stats))
                for s in self.registry.states()
            },
            "journal_seq": self.journal.seq,
            "journal_file": (
                str(self.journal.path) if self.journal.path else None
            ),
            "flight_dumps": self.recorder.dumps_written,
            "histograms": self.recorder.histograms(),
        }

    def _events_since(self, since: int) -> list:
        if self.journal.path is not None:
            return self.journal.events_since(since)
        return self.recorder.events(since)

    def _write_health(
        self, status: str, last_tenant: Optional[str] = None
    ) -> None:
        if self.options.health_file is None:
            return
        payload = self.health_payload(status, last_tenant)
        atomic_write_text(
            Path(self.options.health_file),
            json.dumps(payload, sort_keys=True, indent=2),
        )

    def summary(self) -> str:
        totals = self._totals()
        parts = [
            f"{len(self.registry)} tenants",
            f"{totals['batches_ok']}/{totals['batches_seen']} batches ok",
            f"{totals['quarantined']} quarantined",
        ]
        if totals["shed"]:
            parts.append(f"{totals['shed']} shed")
        if totals["degraded"]:
            parts.append(f"{totals['degraded']} degraded")
        if totals["failed"]:
            parts.append(f"{totals['failed']} failed")
        return ", ".join(parts)

    # -- telemetry shims -------------------------------------------------------

    @staticmethod
    def _count(metric_name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(metric_name).inc()

    @staticmethod
    def _set_gauge(metric_name: str, value: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(metric_name).set(value)
