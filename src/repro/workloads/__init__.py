"""Experiment workloads: topology configs, change generators, sweeps."""

from repro.workloads.fattree_configs import (
    BASE_ASN,
    asn_map,
    bgp_snapshot,
    ospf_snapshot,
    snapshot_for,
)
from repro.workloads.changegen import (
    acl_changes,
    emit_stream,
    LC_NEW_COST,
    LP_NEW_PREF,
    lc_changes,
    link_failures,
    linked_interfaces,
    lp_changes,
    paper_changes,
    stream_batches,
)
from repro.workloads.enterprise import EnterpriseNetwork, build_enterprise, enterprise_topology
from repro.workloads.tenants import (
    build_fleet,
    build_tenant,
    poison_stream,
    tenant_batch_counts,
    zipf_shares,
)
from repro.workloads.specmining import (
    SweepResult,
    from_scratch_sweep,
    incremental_sweep,
)

__all__ = [
    "BASE_ASN",
    "asn_map",
    "bgp_snapshot",
    "ospf_snapshot",
    "snapshot_for",
    "acl_changes",
    "LC_NEW_COST",
    "LP_NEW_PREF",
    "lc_changes",
    "link_failures",
    "linked_interfaces",
    "lp_changes",
    "paper_changes",
    "emit_stream",
    "stream_batches",
    "EnterpriseNetwork",
    "build_enterprise",
    "enterprise_topology",
    "SweepResult",
    "from_scratch_sweep",
    "incremental_sweep",
    "build_fleet",
    "build_tenant",
    "poison_stream",
    "tenant_batch_counts",
    "zipf_shares",
]
