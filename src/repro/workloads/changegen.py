"""Generators of the paper's configuration change workloads.

§5 makes "three types of changes to the configuration of each node":

- ``LinkFailure`` — deactivate the interface of one link,
- ``LC`` — change an OSPF link cost from 1 to 100,
- ``LP`` — change the BGP local preference of routes received at one
  interface from 100 to 150.

The generators are deterministic given a seed and skip interfaces that are
already perturbed, so a sweep touches distinct links.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.config.changes import (
    AddAclEntry,
    BindAcl,
    Change,
    CompositeChange,
    EnableInterface,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
)
from repro.config.schema import AclEntry
from repro.net.addr import Prefix
from repro.net.topologies import LabeledTopology
from repro.net.topology import InterfaceId

#: The paper's parameter values.
LC_NEW_COST = 100
LP_NEW_PREF = 150


def linked_interfaces(
    labeled: LabeledTopology, roles: Optional[Tuple[str, ...]] = None
) -> List[InterfaceId]:
    """Every interface that terminates a physical link (both ends).

    ``roles`` restricts to interfaces owned by nodes with those role labels
    (falling back to all interfaces when nothing matches).
    """
    out = []
    for iface in labeled.topology.interfaces():
        if labeled.topology.neighbor_of(iface.id) is not None:
            out.append(iface.id)
    if roles is not None:
        filtered = [i for i in out if labeled.roles.get(i.node) in roles]
        if filtered:
            out = filtered
    return sorted(out, key=lambda i: (i.node, i.name))


def link_failures(
    labeled: LabeledTopology, count: Optional[int] = None, seed: int = 0
) -> List[ShutdownInterface]:
    """One LinkFailure change per sampled link (one endpoint shut down)."""
    rng = random.Random(seed)
    links = sorted(
        labeled.topology.links(), key=lambda l: (str(l.a), str(l.b))
    )
    if count is not None:
        links = rng.sample(links, min(count, len(links)))
    changes = []
    for link in links:
        end = link.a if rng.random() < 0.5 else link.b
        changes.append(ShutdownInterface(end.node, end.name))
    return changes


def lc_changes(
    labeled: LabeledTopology,
    count: Optional[int] = None,
    seed: int = 0,
    new_cost: int = LC_NEW_COST,
) -> List[SetOspfCost]:
    """Link-cost changes (OSPF), each on a distinct linked interface."""
    rng = random.Random(seed)
    interfaces = linked_interfaces(labeled)
    if count is not None:
        interfaces = rng.sample(interfaces, min(count, len(interfaces)))
    return [SetOspfCost(i.node, i.name, new_cost) for i in interfaces]


def lp_changes(
    labeled: LabeledTopology,
    count: Optional[int] = None,
    seed: int = 0,
    new_pref: int = LP_NEW_PREF,
    roles: Optional[Tuple[str, ...]] = None,
) -> List[SetLocalPref]:
    """Local-preference changes (BGP), each on a distinct linked interface.

    ``roles`` restricts the sampled interfaces to nodes with those labels —
    e.g. ``("edge",)`` samples ToR uplinks on a fat tree, where an import
    preference actually changes the chosen paths (a preference on a core's
    only link into a pod is a no-op).
    """
    rng = random.Random(seed)
    interfaces = linked_interfaces(labeled, roles=roles)
    if count is not None:
        interfaces = rng.sample(interfaces, min(count, len(interfaces)))
    return [SetLocalPref(i.node, i.name, new_pref) for i in interfaces]


def acl_changes(
    labeled: LabeledTopology,
    count: Optional[int] = None,
    seed: int = 0,
    blocked_port: int = 23,
) -> List[CompositeChange]:
    """Security-hardening changes (the §2 maintenance workload that is not
    a routing change): install and bind a deny-ACL on a sampled interface.

    Each change is a composite: add the deny entry and the trailing permit,
    then bind the ACL inbound on the interface.  Targets interfaces that
    terminate links, like the paper's change generators.
    """
    rng = random.Random(seed)
    interfaces = linked_interfaces(labeled)
    if count is not None:
        interfaces = rng.sample(interfaces, min(count, len(interfaces)))
    changes = []
    for index, iface in enumerate(interfaces):
        acl_name = f"SEC_{iface.name.upper()}_{index}"
        prefixes = [p for ps in labeled.host_prefixes.values() for p in ps]
        target: Optional[Prefix] = rng.choice(prefixes) if prefixes else None
        changes.append(
            CompositeChange(
                [
                    AddAclEntry(
                        iface.node,
                        acl_name,
                        AclEntry(
                            10,
                            "deny",
                            proto=6,
                            dst=target,
                            dst_port=(blocked_port, blocked_port),
                        ),
                    ),
                    AddAclEntry(iface.node, acl_name, AclEntry(20, "permit")),
                    BindAcl(iface.node, iface.name, acl_name, "in"),
                ],
                label=f"harden {iface}",
            )
        )
    return changes


def stream_batches(
    labeled: LabeledTopology,
    protocol: str = "ospf",
    count: int = 20,
    seed: int = 0,
) -> List[List[Change]]:
    """Change batches for a serving stream (``repro serve``).

    Unlike the one-shot sweeps above, a stream must stay *applicable* for
    arbitrarily many batches, so every perturbation is emitted as a
    flap pair — fail then recover, raise the cost then restore it — and
    the generator cycles through distinct links.  Deterministic given the
    seed.
    """
    rng = random.Random(seed)
    failures = link_failures(labeled, seed=seed)
    if protocol == "ospf":
        tweaks: List[Tuple[Change, Change]] = [
            (
                SetOspfCost(c.device, c.interface, c.cost),
                SetOspfCost(c.device, c.interface, 1),
            )
            for c in lc_changes(labeled, seed=seed + 1)
        ]
    elif protocol == "bgp":
        from repro.config.changes import ClearLocalPref

        tweaks = [
            (c, ClearLocalPref(c.device, c.interface))
            for c in lp_changes(labeled, seed=seed + 1)
        ]
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    pairs: List[Tuple[Change, Change]] = [
        (f, EnableInterface(f.device, f.interface)) for f in failures
    ]
    pairs.extend(tweaks)
    rng.shuffle(pairs)
    batches: List[List[Change]] = []
    index = 0
    while len(batches) < count:
        do, undo = pairs[index % len(pairs)]
        batches.append([do])
        if len(batches) < count:
            batches.append([undo])
        index += 1
    return batches


def emit_stream(
    labeled: LabeledTopology,
    path,
    protocol: str = "ospf",
    count: int = 20,
    seed: int = 0,
) -> int:
    """Write a :func:`stream_batches` workload as a JSONL stream file —
    the producer side of ``repro serve``.  Returns the batch count."""
    from repro.serve.stream import write_stream

    return write_stream(
        stream_batches(labeled, protocol=protocol, count=count, seed=seed),
        path,
    )


def paper_changes(
    labeled: LabeledTopology, protocol: str, count: int, seed: int = 0
) -> List[Tuple[str, Change]]:
    """A labelled mixed workload: (kind, change) pairs for the protocol's
    change types (LinkFailure plus LC for OSPF or LP for BGP)."""
    out: List[Tuple[str, Change]] = []
    for change in link_failures(labeled, count=count, seed=seed):
        out.append(("LinkFailure", change))
    if protocol == "ospf":
        for change in lc_changes(labeled, count=count, seed=seed + 1):
            out.append(("LC", change))
    elif protocol == "bgp":
        for change in lp_changes(labeled, count=count, seed=seed + 1):
            out.append(("LP", change))
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    return out
