"""An enterprise-style mixed-protocol workload.

The paper's motivation cites campus/enterprise networks ("a tale of two
campuses") whose configurations mix protocols and policy mechanisms.  This
synthesizer builds such a network to stress every modeled feature at once:

- a 2x2 **core grid** running OSPF on all internal links;
- **access routers** hanging off each core, OSPF toward the core, each
  originating one user subnet;
- a **border router** running eBGP to an external **provider** router
  (its own AS), redistributing OSPF into BGP and BGP into OSPF;
- a **default static route** on the border toward the provider,
  redistributed into OSPF;
- an **ACL** on the border's provider-facing interface blocking telnet
  into the user subnets.

Used by integration tests (engine vs baseline on something much less
regular than a fat tree) and available for examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Redistribution,
    Snapshot,
    StaticRoute,
)
from repro.net.addr import Prefix
from repro.net.topologies import (
    LabeledTopology,
    _SubnetAllocator,
    _attach_host_prefix,
    _wire,
    HOST_POOL_BASE,
    LINK_POOL_BASE,
)
from repro.net.topology import Topology

#: The provider announces this prefix ("the internet").
PROVIDER_PREFIX = Prefix.parse("198.51.100.0/24")


@dataclass
class EnterpriseNetwork:
    """The synthesized network plus the names tests need."""

    labeled: LabeledTopology
    snapshot: Snapshot
    cores: List[str]
    access: List[str]
    border: str
    provider: str


def enterprise_topology(
    access_per_core: int = 1, dual_homed: bool = False
) -> LabeledTopology:
    """``dual_homed`` wires every access router to a second core as well —
    the remediation the audit example applies."""
    topo = Topology()
    labeled = LabeledTopology(
        topo,
        description=(
            f"enterprise(access_per_core={access_per_core}, "
            f"dual_homed={dual_homed})"
        ),
    )
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)

    cores = [f"core{i}" for i in range(4)]
    for name in cores:
        topo.add_node(name)
        labeled.roles[name] = "core"
    # 2x2 core ring.
    _wire(topo, links, "core0", "c1", "core1", "c0")
    _wire(topo, links, "core1", "c2", "core2", "c1")
    _wire(topo, links, "core2", "c3", "core3", "c2")
    _wire(topo, links, "core3", "c0", "core0", "c3")

    index = 0
    for core_index, core in enumerate(cores):
        for slot in range(access_per_core):
            name = f"acc{index}"
            index += 1
            topo.add_node(name)
            labeled.roles[name] = "access"
            _wire(topo, links, core, f"a{slot}", name, "up0")
            if dual_homed:
                backup = cores[(core_index + 1) % len(cores)]
                _wire(topo, links, backup, f"x{index - 1}", name, "up1")
            _attach_host_prefix(labeled, hosts, name)

    topo.add_node("border")
    labeled.roles["border"] = "border"
    _wire(topo, links, "core0", "b0", "border", "in0")
    topo.add_node("provider")
    labeled.roles["provider"] = "provider"
    _wire(topo, links, "border", "out0", "provider", "cust0")
    # The provider's "internet" prefix.
    topo.add_interface(
        "provider",
        "net0",
        prefix=PROVIDER_PREFIX,
        address=PROVIDER_PREFIX.first() + 1,
    )
    return labeled


def build_enterprise(
    access_per_core: int = 1, dual_homed: bool = False
) -> EnterpriseNetwork:
    labeled = enterprise_topology(access_per_core, dual_homed=dual_homed)
    topo = labeled.topology
    snapshot = Snapshot(topo)

    def base_device(name: str) -> DeviceConfig:
        device = DeviceConfig(hostname=name)
        for iface in topo.node(name).interfaces.values():
            device.interfaces[iface.name] = InterfaceConfig(
                iface.name, prefix=iface.prefix, address=iface.address
            )
        return device

    cores = sorted(n for n, r in labeled.roles.items() if r == "core")
    access = sorted(n for n, r in labeled.roles.items() if r == "access")

    # Cores and access routers: OSPF everywhere internal.
    for name in cores + access:
        device = base_device(name)
        device.ospf = OspfProcess()
        for iface in device.interfaces.values():
            iface.ospf_enabled = True
        snapshot.add_device(device)

    # Border: OSPF on the inside, eBGP to the provider, redistribution both
    # ways, a default static toward the provider redistributed into OSPF,
    # and a telnet-blocking ACL inbound from the provider.
    border = base_device("border")
    border.ospf = OspfProcess(
        redistribute=[Redistribution("bgp", 50), Redistribution("static", 10)]
    )
    border.interfaces["in0"].ospf_enabled = True
    border.bgp = BgpProcess(
        asn=64512, redistribute=[Redistribution("ospf", 1)]
    )
    border.bgp.add_neighbor(BgpNeighbor("out0", remote_as=64513))
    provider_if = topo.node("provider").interface("cust0")
    border.static_routes.append(
        StaticRoute(Prefix.parse("0.0.0.0/0"), next_hop_ip=provider_if.address)
    )
    border.acls["NO_TELNET"] = Acl(
        "NO_TELNET",
        entries=[
            AclEntry(10, "deny", proto=6, dst_port=(23, 23)),
            AclEntry(20, "permit"),
        ],
    )
    border.interfaces["out0"].acl_in = "NO_TELNET"
    snapshot.add_device(border)

    # Provider: its own AS, originates the internet prefix.
    provider = base_device("provider")
    provider.bgp = BgpProcess(asn=64513, networks=[PROVIDER_PREFIX])
    provider.bgp.add_neighbor(BgpNeighbor("cust0", remote_as=64512))
    snapshot.add_device(provider)

    snapshot.validate()
    return EnterpriseNetwork(
        labeled=labeled,
        snapshot=snapshot,
        cores=cores,
        access=access,
        border="border",
        provider="provider",
    )
