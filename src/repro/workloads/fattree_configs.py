"""Configuration synthesis for experiment topologies.

Reproduces the paper's evaluation setup (§5): a fat-tree topology running
either OSPF (every interface cost 1) or BGP (each node its own AS, peering
with every physical neighbor, originating its host prefixes).  The
synthesizers work for any :class:`~repro.net.topologies.LabeledTopology`,
not just fat trees, so tests and examples reuse them on lines, rings, and
grids.
"""

from __future__ import annotations

from typing import Dict

from repro.config.schema import (
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Snapshot,
)
from repro.net.topologies import LabeledTopology

#: First AS number handed out by :func:`bgp_snapshot`.
BASE_ASN = 65000


def _base_device(labeled: LabeledTopology, node_name: str) -> DeviceConfig:
    """A device with every topology interface configured and enabled."""
    device = DeviceConfig(hostname=node_name)
    node = labeled.topology.node(node_name)
    for iface in node.interfaces.values():
        device.interfaces[iface.name] = InterfaceConfig(
            name=iface.name,
            prefix=iface.prefix,
            address=iface.address,
            shutdown=False,
        )
    return device


def ospf_snapshot(labeled: LabeledTopology, link_cost: int = 1) -> Snapshot:
    """Every device runs OSPF on every interface (paper's OSPF setup)."""
    snapshot = Snapshot(labeled.topology)
    for node_name in sorted(labeled.topology.node_names()):
        device = _base_device(labeled, node_name)
        device.ospf = OspfProcess(process_id=1)
        for iface in device.interfaces.values():
            iface.ospf_enabled = True
            iface.ospf_cost = link_cost
        snapshot.add_device(device)
    snapshot.validate()
    return snapshot


def asn_map(labeled: LabeledTopology) -> Dict[str, int]:
    """Deterministic node -> AS number assignment (one AS per node)."""
    return {
        name: BASE_ASN + index
        for index, name in enumerate(sorted(labeled.topology.node_names()))
    }


def bgp_snapshot(labeled: LabeledTopology) -> Snapshot:
    """Each node is its own AS and peers with all neighbors (paper's BGP
    setup); host prefixes are originated with ``network`` statements."""
    snapshot = Snapshot(labeled.topology)
    asns = asn_map(labeled)
    topology = labeled.topology
    for node_name in sorted(topology.node_names()):
        device = _base_device(labeled, node_name)
        device.bgp = BgpProcess(asn=asns[node_name])
        node = topology.node(node_name)
        for iface in node.interfaces.values():
            peer = topology.neighbor_of(iface.id)
            if peer is not None:
                device.bgp.add_neighbor(
                    BgpNeighbor(iface.name, remote_as=asns[peer.node])
                )
        for prefix in labeled.host_prefixes.get(node_name, []):
            device.bgp.networks.append(prefix)
        snapshot.add_device(device)
    snapshot.validate()
    return snapshot


def snapshot_for(labeled: LabeledTopology, protocol: str) -> Snapshot:
    """Dispatch on the paper's two protocols."""
    if protocol == "ospf":
        return ospf_snapshot(labeled)
    if protocol == "bgp":
        return bgp_snapshot(labeled)
    raise ValueError(f"unknown protocol {protocol!r} (expected 'ospf' or 'bgp')")
