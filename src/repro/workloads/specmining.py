"""The specification-mining workload (paper §2, measured in §5).

Config2Spec-style specification mining enumerates network conditions —
here, every single link failure — and generates the data plane under each to
infer which policies always hold.  The paper's claim: because each link
failure only affects a small portion of the data plane, incremental data
plane generation across the sweep is ~20x faster than generating each
condition's data plane from scratch.

:func:`incremental_sweep` walks fail -> (measure) -> restore for every link
using one incremental verifier; :func:`from_scratch_sweep` recomputes the
FIB with the baseline simulator for every condition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.baseline import simulate
from repro.config.changes import ShutdownInterface, apply_changes
from repro.config.schema import Snapshot
from repro.net.topologies import LabeledTopology
from repro.routing.program import ControlPlane
from repro.routing.types import FibEntry


@dataclass
class SweepResult:
    """Timing and state signatures of one link-failure sweep."""

    mode: str
    conditions: int = 0
    total_seconds: float = 0.0
    #: condition label -> hash of the FIB under that condition
    fib_signatures: Dict[str, int] = field(default_factory=dict)

    @property
    def per_condition_seconds(self) -> float:
        if not self.conditions:
            return 0.0
        return self.total_seconds / self.conditions

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.conditions} conditions in "
            f"{self.total_seconds:.2f} s "
            f"({self.per_condition_seconds * 1000:.1f} ms each)"
        )


def _signature(entries: FrozenSet[FibEntry]) -> int:
    return hash(entries)


def _conditions(labeled: LabeledTopology) -> List[Tuple[str, ShutdownInterface]]:
    out = []
    for link in sorted(labeled.topology.links(), key=lambda l: (str(l.a), str(l.b))):
        out.append((str(link), ShutdownInterface(link.a.node, link.a.name)))
    return out


def incremental_sweep(
    labeled: LabeledTopology,
    snapshot: Snapshot,
    limit: Optional[int] = None,
) -> SweepResult:
    """Fail every link in turn on one incremental control plane."""
    result = SweepResult(mode="incremental")
    control_plane = ControlPlane()
    control_plane.update_to(snapshot)  # warm start, not counted
    conditions = _conditions(labeled)
    if limit is not None:
        conditions = conditions[:limit]
    started = time.perf_counter()
    for label, failure in conditions:
        failed, _ = apply_changes(snapshot, [failure])
        control_plane.update_to(failed)
        result.fib_signatures[label] = _signature(frozenset(control_plane.fib()))
        control_plane.update_to(snapshot)  # restore
        result.conditions += 1
    result.total_seconds = time.perf_counter() - started
    return result


def from_scratch_sweep(
    labeled: LabeledTopology,
    snapshot: Snapshot,
    limit: Optional[int] = None,
) -> SweepResult:
    """Recompute the FIB from scratch under every link failure."""
    result = SweepResult(mode="from-scratch")
    conditions = _conditions(labeled)
    if limit is not None:
        conditions = conditions[:limit]
    started = time.perf_counter()
    for label, failure in conditions:
        failed, _ = apply_changes(snapshot, [failure])
        result.fib_signatures[label] = _signature(frozenset(simulate(failed).fib))
        result.conditions += 1
    result.total_seconds = time.perf_counter() - started
    return result
