"""Multi-tenant fleet + traffic generation for the tenants service.

Real multi-tenant load is skewed: a few tenants produce most of the
change traffic while a long tail barely changes at all.  We model that
with a Zipf law — tenant at popularity rank ``k`` gets share
``1/k^s`` (normalized) of both the batch traffic and its scheduler
weight — which is exactly the regime the hydration LRU is designed
for: the head of the distribution stays resident, the tail lives as
checkpoints.

:func:`build_fleet` materializes a service root ``DIR/<tenant>/...``
(snapshot, stream, tenant.json) directly consumable by
``repro serve --tenants DIR``; everything is deterministic in the seed.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.config.io import save_snapshot
from repro.net.topologies import ring
from repro.tenants.registry import TenantConfig
from repro.workloads.changegen import stream_batches
from repro.workloads.fattree_configs import snapshot_for


def zipf_shares(count: int, exponent: float = 1.1) -> List[float]:
    """Normalized Zipf shares for ranks 1..count (sums to 1.0)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def tenant_batch_counts(
    count: int,
    total_batches: int,
    exponent: float = 1.1,
) -> List[int]:
    """Split ``total_batches`` across tenants by Zipf rank (every tenant
    gets at least one batch, so the tail still exercises hydration)."""
    shares = zipf_shares(count, exponent)
    counts = [max(1, round(share * total_batches)) for share in shares]
    return counts


def build_tenant(
    root: Union[str, Path],
    tenant_id: str,
    weight: float = 1.0,
    ring_size: int = 4,
    protocol: str = "ospf",
    batches: int = 10,
    seed: int = 0,
) -> TenantConfig:
    """Materialize one tenant directory: snapshot + stream + config."""
    from repro.serve.stream import write_stream

    config = TenantConfig(tenant_id, Path(root) / tenant_id, weight=weight)
    config.save()
    labeled = ring(ring_size)
    snapshot = snapshot_for(labeled, protocol)
    save_snapshot(snapshot, config.snapshot_dir)
    if batches > 0:
        write_stream(
            stream_batches(
                labeled, protocol=protocol, count=batches, seed=seed
            ),
            config.stream_file,
        )
    return config


def build_fleet(
    root: Union[str, Path],
    count: int,
    total_batches: int = 200,
    exponent: float = 1.1,
    ring_sizes: Tuple[int, int] = (3, 5),
    protocol: str = "ospf",
    seed: int = 0,
    poison_tenant: Optional[str] = None,
) -> List[TenantConfig]:
    """A whole service root: ``count`` tenants with Zipf-skewed traffic.

    Tenant ids are ``t000, t001, ...`` in rank order (t000 is the
    heaviest).  Topology sizes vary deterministically within
    ``ring_sizes`` so footprints differ — the LRU budget then has real
    choices to make.  ``poison_tenant`` appends one malformed line to
    that tenant's stream (the fault-injection hook for isolation tests
    and the CI smoke job).
    """
    rng = random.Random(seed)
    shares = zipf_shares(count, exponent)
    counts = tenant_batch_counts(count, total_batches, exponent)
    low, high = ring_sizes
    configs = []
    for rank in range(count):
        tenant_id = f"t{rank:03d}"
        config = build_tenant(
            root,
            tenant_id,
            # Scheduler weight mirrors the traffic share (normalized so
            # the lightest tenant has weight ~1).
            weight=max(shares[rank] / shares[-1], 1.0),
            ring_size=rng.randint(low, high),
            protocol=protocol,
            batches=counts[rank],
            seed=seed + rank,
        )
        configs.append(config)
    if poison_tenant is not None:
        poison_stream(Path(root) / poison_tenant)
    return configs


def poison_stream(
    tenant_root: Union[str, Path], line: str = "{this is not json"
) -> None:
    """Append one undecodable line to a tenant's stream — the batch will
    quarantine into that tenant's dead-letter box (and only that
    tenant's)."""
    from repro.tenants.registry import STREAM_FILE

    stream = Path(tenant_root) / STREAM_FILE
    with stream.open("a") as handle:
        handle.write(line + "\n")
