"""Tests for the synchronous path-vector BGP baseline, including
non-convergent gadgets from the stable paths problem."""

import pytest

from repro.baseline.path_vector import (
    LOCAL,
    BgpDivergenceError,
    BgpSession,
    PathVectorSimulation,
    select,
)


def sessions_for(pairs):
    """Bidirectional sessions from (a, b) node pairs, with interface names
    'to_<peer>'."""
    out = []
    for a, b in pairs:
        out.append(BgpSession(a, f"to_{b}", b, f"to_{a}"))
        out.append(BgpSession(b, f"to_{a}", a, f"to_{b}"))
    return out


PREFIX = (0xAC100000, 24)


class TestSelect:
    def test_empty(self):
        assert select(set()) == (None, [])

    def test_highest_lp_wins(self):
        best, hops = select({(100, (1,), "a"), (200, (1, 2, 3), "b")})
        assert best[0] == 200
        assert hops == ["b"]

    def test_shortest_path_breaks_lp_tie(self):
        best, hops = select({(100, (1, 2), "a"), (100, (1,), "b")})
        assert best[1] == (1,)
        assert hops == ["b"]

    def test_multipath_ties(self):
        best, hops = select({(100, (1,), "a"), (100, (2,), "b")})
        assert hops == ["a", "b"]

    def test_local_excluded_from_next_hops(self):
        best, hops = select({(100, (), LOCAL)})
        assert best == (100, (), LOCAL)
        assert hops == []


class TestConvergence:
    def test_line_converges(self):
        asn_of = {"a": 1, "b": 2, "c": 3}
        sim = PathVectorSimulation(
            asn_of,
            sessions_for([("a", "b"), ("b", "c")]),
            originated={"a": {PREFIX}, "b": set(), "c": set()},
            policy_in={},
            policy_out={},
        )
        sim.run()
        assert sim.best["c"][PREFIX][1] == (2, 1)
        assert sim.next_hops["c"][PREFIX] == ["to_b"]

    def test_loop_prevention(self):
        asn_of = {"a": 1, "b": 2, "c": 3}
        sim = PathVectorSimulation(
            asn_of,
            sessions_for([("a", "b"), ("b", "c"), ("c", "a")]),
            originated={"a": {PREFIX}, "b": set(), "c": set()},
            policy_in={},
            policy_out={},
        )
        sim.run()
        # b's best is the direct path; the path through c is longer, and no
        # path may contain AS 2 twice.
        assert sim.best["b"][PREFIX][1] == (1,)

    def test_bad_gadget_diverges(self):
        """Griffin's BAD GADGET: three ASes each prefer the route through
        their clockwise neighbor over the direct route — no stable
        assignment, the synchronous iteration oscillates."""
        asn_of = {"o": 10, "a": 1, "b": 2, "c": 3}
        sessions = sessions_for(
            [("o", "a"), ("o", "b"), ("o", "c"), ("a", "b"), ("b", "c"), ("c", "a")]
        )
        # Each of a/b/c prefers routes heard from its clockwise peer (path
        # length 2) over the direct route (length 1) via import local-pref:
        # clause: permit all with lp 200 on the session to that peer.
        prefer = {
            ("a", "to_b"): ((10, "permit", None, None, 200, None),),
            ("b", "to_c"): ((10, "permit", None, None, 200, None),),
            ("c", "to_a"): ((10, "permit", None, None, 200, None),),
        }
        sim = PathVectorSimulation(
            asn_of,
            sessions,
            originated={"o": {PREFIX}, "a": set(), "b": set(), "c": set()},
            policy_in=prefer,
            policy_out={},
            max_rounds=64,
        )
        with pytest.raises(BgpDivergenceError):
            sim.run()

    def test_good_gadget_converges(self):
        """Same shape but preferences point at the origin: stable."""
        asn_of = {"o": 10, "a": 1, "b": 2, "c": 3}
        sessions = sessions_for(
            [("o", "a"), ("o", "b"), ("o", "c"), ("a", "b"), ("b", "c"), ("c", "a")]
        )
        prefer = {
            ("a", "to_o"): ((10, "permit", None, None, 200, None),),
            ("b", "to_o"): ((10, "permit", None, None, 200, None),),
            ("c", "to_o"): ((10, "permit", None, None, 200, None),),
        }
        sim = PathVectorSimulation(
            asn_of,
            sessions,
            originated={"o": {PREFIX}, "a": set(), "b": set(), "c": set()},
            policy_in=prefer,
            policy_out={},
        )
        sim.run()
        for node in ("a", "b", "c"):
            assert sim.best[node][PREFIX][1] == (10,)

    def test_rounds_counted(self):
        asn_of = {"a": 1, "b": 2}
        sim = PathVectorSimulation(
            asn_of,
            sessions_for([("a", "b")]),
            originated={"a": {PREFIX}, "b": set()},
            policy_in={},
            policy_out={},
        )
        sim.run()
        assert sim.rounds >= 2
