"""Tests for the baseline Dijkstra SPF."""

from repro.baseline.spf import all_pairs_distances, dijkstra, ecmp_next_hops


def diamond():
    """a -> b -> d (1+1), a -> c -> d (1+1): two equal paths."""
    return {
        "a": [("b", "ab", 1), ("c", "ac", 1)],
        "b": [("a", "ba", 1), ("d", "bd", 1)],
        "c": [("a", "ca", 1), ("d", "cd", 1)],
        "d": [("b", "db", 1), ("c", "dc", 1)],
    }


class TestDijkstra:
    def test_distances(self):
        dist = dijkstra(diamond(), "a")
        assert dist == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_unreachable_absent(self):
        adjacency = {"a": [("b", "ab", 1)], "b": [], "z": []}
        dist = dijkstra(adjacency, "a")
        assert "z" not in dist

    def test_weighted_shortcut(self):
        adjacency = {
            "a": [("b", "ab", 10), ("c", "ac", 1)],
            "c": [("b", "cb", 1)],
            "b": [],
        }
        assert dijkstra(adjacency, "a")["b"] == 2

    def test_all_pairs(self):
        dist = all_pairs_distances(diamond())
        assert dist["b"]["c"] == 2
        assert dist["d"]["a"] == 2


class TestEcmp:
    def test_two_next_hops(self):
        adjacency = diamond()
        distances = all_pairs_distances(adjacency)
        assert ecmp_next_hops(adjacency, distances, "a", "d") == ["ab", "ac"]

    def test_single_next_hop(self):
        adjacency = diamond()
        distances = all_pairs_distances(adjacency)
        assert ecmp_next_hops(adjacency, distances, "a", "b") == ["ab"]

    def test_self_target_empty(self):
        adjacency = diamond()
        distances = all_pairs_distances(adjacency)
        assert ecmp_next_hops(adjacency, distances, "a", "a") == []

    def test_unreachable_target_empty(self):
        adjacency = {"a": [("b", "ab", 1)], "b": [], "z": []}
        distances = all_pairs_distances(adjacency)
        assert ecmp_next_hops(adjacency, distances, "a", "z") == []

    def test_non_shortest_interface_excluded(self):
        adjacency = {
            "a": [("b", "ab", 1), ("d", "ad", 5)],
            "b": [("d", "bd", 1)],
            "d": [],
        }
        distances = all_pairs_distances(adjacency)
        assert ecmp_next_hops(adjacency, distances, "a", "d") == ["ab"]
