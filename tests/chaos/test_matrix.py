"""The crash-matrix harness: journal invariant checks against synthetic
journals, and one real kill-and-recover cell end to end."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.chaos.harness import run_matrix, verify_journal


def journal_file(tmp_path: Path, records) -> Path:
    path = tmp_path / "journal.jsonl"
    lines = []
    for seq, record in enumerate(records, start=1):
        full = {"seq": seq, "ts": 0.0, "cid": record.get("batch", "-")}
        full.update(record)
        lines.append(json.dumps(full))
    path.write_text("".join(line + "\n" for line in lines))
    return path


def start(cursor):
    return {"event": "daemon-start", "cursor": cursor}


def committed(index):
    return {"event": "committed", "batch": f"{index:06d}"}


class TestVerifyJournal:
    def test_clean_single_run_passes(self, tmp_path):
        path = journal_file(
            tmp_path, [start(0)] + [committed(i) for i in range(4)]
        )
        assert verify_journal(path, 4) == []

    def test_crash_and_resume_passes(self, tmp_path):
        path = journal_file(
            tmp_path,
            [start(0), committed(0), committed(1),
             start(2), committed(2), committed(3)],
        )
        assert verify_journal(path, 4) == []

    def test_quarantine_and_rebuild_count_as_disposals(self, tmp_path):
        path = journal_file(
            tmp_path,
            [start(0),
             committed(0),
             {"event": "malformed", "batch": "000001"},
             {"event": "quarantined", "batch": "000001"},
             {"event": "rebuild", "batch": "000002"}],
        )
        assert verify_journal(path, 3) == []

    def test_empty_journal_fails(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        failures = verify_journal(path, 2)
        assert failures and "no durable events" in failures[0]

    def test_seq_gap_is_detected(self, tmp_path):
        path = journal_file(
            tmp_path, [start(0), committed(0), committed(1)]
        )
        # Remove the middle line: seq 2 now missing.
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        failures = verify_journal(path, 2)
        assert any("not gapless" in failure for failure in failures)

    def test_duplicate_disposal_is_detected(self, tmp_path):
        path = journal_file(
            tmp_path, [start(0), committed(0), committed(0)]
        )
        failures = verify_journal(path, 2)
        assert any("contiguous" in failure for failure in failures)

    def test_skipped_batch_is_detected(self, tmp_path):
        path = journal_file(
            tmp_path, [start(0), committed(0), committed(2)]
        )
        failures = verify_journal(path, 3)
        assert any("contiguous" in failure for failure in failures)

    def test_resume_losing_a_batch_is_detected(self, tmp_path):
        # Crash after batch 0; the resumed run starts at cursor 2 —
        # batch 1 was never disposed of by anyone.
        path = journal_file(
            tmp_path,
            [start(0), committed(0), start(2), committed(2)],
        )
        failures = verify_journal(path, 3)
        assert any("cover stream indices" in failure for failure in failures)

    def test_torn_tail_is_ignored(self, tmp_path):
        path = journal_file(
            tmp_path, [start(0), committed(0), committed(1)]
        )
        with path.open("a") as handle:
            handle.write('{"seq": 4, "event": "comm')  # torn, no newline
        assert verify_journal(path, 2) == []


@pytest.mark.slow
class TestEndToEnd:
    def test_single_cell_kill_and_recover(self, tmp_path):
        report = run_matrix(
            root=tmp_path, points=["cursor.commit"], smoke=True, batches=4
        )
        assert report.error is None
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert cell.ok, cell.failures
        assert cell.crash_exit == 137
        assert cell.recover_exit == 0
        assert cell.fingerprint == report.baseline_fingerprint
        assert cell.cursor == 4
        # The evidence stays on disk for post-mortems.
        workdir = Path(cell.workdir)
        assert (workdir / "journal.jsonl").exists()
        assert (workdir / "result.json").exists()
