"""Unit tests for the crash-point registry and its arming semantics."""

from __future__ import annotations

import pytest

from repro.chaos.points import (
    CRASH_POINTS,
    CrashPointHit,
    _parse_env,
    arm,
    crash_point,
    disarm,
    point_names,
)


@pytest.fixture(autouse=True)
def always_disarmed():
    """No test leaks an armed point into the next."""
    disarm()
    yield
    disarm()


class TestRegistry:
    def test_names_are_unique(self):
        names = point_names()
        assert len(names) == len(set(names))

    def test_names_follow_subsystem_dot_instant(self):
        for name in point_names():
            subsystem, _, instant = name.partition(".")
            assert subsystem and instant, name
            assert name == name.lower()

    def test_every_point_has_a_description(self):
        for name, description in CRASH_POINTS:
            assert description.strip(), name


class TestArming:
    def test_unarmed_is_a_no_op(self):
        crash_point("checkpoint.replace")  # must not raise

    def test_arming_an_unknown_point_is_refused(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            arm("no.such.point")

    def test_arming_an_unknown_mode_is_refused(self):
        with pytest.raises(ValueError, match="unknown crash mode"):
            arm("checkpoint.replace", mode="explode")

    def test_raise_mode_fires_and_disarms(self):
        arm("cursor.commit", mode="raise")
        with pytest.raises(CrashPointHit, match="cursor.commit"):
            crash_point("cursor.commit")
        # One shot: the same point is a no-op afterwards.
        crash_point("cursor.commit")

    def test_other_points_do_not_fire(self):
        arm("cursor.commit", mode="raise")
        crash_point("journal.append")  # different point: no-op
        with pytest.raises(CrashPointHit):
            crash_point("cursor.commit")

    def test_hits_counts_executions(self):
        arm("journal.append", hits=3, mode="raise")
        crash_point("journal.append")
        crash_point("journal.append")
        with pytest.raises(CrashPointHit):
            crash_point("journal.append")

    def test_tear_runs_before_the_hit(self):
        torn = []
        arm("journal.append", mode="raise")
        with pytest.raises(CrashPointHit):
            crash_point("journal.append", tear=lambda: torn.append(True))
        assert torn == [True]

    def test_tear_does_not_run_before_the_final_hit(self):
        torn = []
        arm("journal.append", hits=2, mode="raise")
        crash_point("journal.append", tear=lambda: torn.append(True))
        assert torn == []
        with pytest.raises(CrashPointHit):
            crash_point("journal.append", tear=lambda: torn.append(True))
        assert torn == [True]


class TestEnvParsing:
    def test_bare_name(self):
        assert _parse_env("checkpoint.replace") == ("checkpoint.replace", 1)

    def test_name_with_hits(self):
        assert _parse_env("journal.append:4") == ("journal.append", 4)

    def test_garbage_hits_default_to_one(self):
        assert _parse_env("journal.append:soon") == ("journal.append", 1)

    def test_hits_are_at_least_one(self):
        assert _parse_env("journal.append:0") == ("journal.append", 1)
