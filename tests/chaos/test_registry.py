"""The crash-point registry is the single source of truth: every name
must have an instrumentation call site, a DESIGN.md table row, and a
place in the matrix."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.chaos.harness import SMOKE_POINTS, matrix_cells
from repro.chaos.points import CRASH_POINTS, point_names

SRC = Path(repro.__file__).resolve().parent
REPO = SRC.parents[1]

CALL_RE = re.compile(r"crash_point\(\s*\"([a-z.]+)\"")


def _call_sites():
    sites = {}
    for path in SRC.rglob("*.py"):
        if "chaos" in path.parts:
            continue  # the registry and harness themselves don't count
        for name in CALL_RE.findall(path.read_text()):
            sites.setdefault(name, []).append(path.relative_to(REPO))
    return sites


class TestCallSites:
    def test_every_point_is_instrumented_somewhere(self):
        sites = _call_sites()
        missing = [name for name in point_names() if name not in sites]
        assert not missing, f"crash points with no call site: {missing}"

    def test_every_call_site_names_a_registered_point(self):
        unknown = set(_call_sites()) - set(point_names())
        assert not unknown, f"unregistered crash_point call sites: {unknown}"


class TestDesignMirror:
    def test_design_table_lists_every_point(self):
        design = (REPO / "DESIGN.md").read_text()
        missing = [
            name for name in point_names() if f"`{name}`" not in design
        ]
        assert not missing, f"DESIGN.md is missing crash points: {missing}"


class TestMatrixShape:
    def test_smoke_points_are_registered(self):
        assert set(SMOKE_POINTS) <= set(point_names())

    def test_smoke_covers_every_boundary_class(self):
        """One point per subsystem prefix — the cheap per-PR set still
        touches each durability boundary class."""
        classes = {name.split(".")[0] for name in point_names()}
        smoke_classes = {name.split(".")[0] for name in SMOKE_POINTS}
        assert smoke_classes == classes

    def test_smoke_cells_run_at_depth_one(self):
        cells = matrix_cells(smoke=True)
        assert [point for point, _ in cells] == list(SMOKE_POINTS)
        assert all(hits == 1 for _, hits in cells)

    def test_full_matrix_covers_every_point_at_depth(self):
        cells = matrix_cells()
        by_point = {}
        for point, hits in cells:
            by_point.setdefault(point, []).append(hits)
        assert set(by_point) == set(point_names())
        for point, depths in by_point.items():
            if point == "deadletter.dump":
                # one poison batch per workload: depth >1 can't fire
                assert depths == [1]
            else:
                assert depths == [1, 3]

    def test_unknown_point_is_refused(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            matrix_cells(points=["no.such.point"])

    def test_point_subset_is_respected(self):
        cells = matrix_cells(points=["cursor.commit"])
        assert all(point == "cursor.commit" for point, _ in cells)
        assert [hits for _, hits in cells] == [1, 3]

    def test_registry_matches_points_module(self):
        from repro.chaos.harness import REGISTERED_POINTS

        assert REGISTERED_POINTS is CRASH_POINTS
