"""Tests for typed configuration change operations."""

import pytest

from repro.config.changes import (
    AddAclEntry,
    AddBgpNeighbor,
    AddBgpNetwork,
    AddRedistribution,
    AddStaticRoute,
    BindAcl,
    ChangeError,
    ClearLocalPref,
    CompositeChange,
    EnableInterface,
    RemoveAclEntry,
    RemoveBgpNeighbor,
    RemoveBgpNetwork,
    RemoveRedistribution,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    UnbindAcl,
    apply_changes,
)
from repro.config.schema import AclEntry
from repro.net.addr import Prefix


class TestInterfaceChanges:
    def test_shutdown_enable(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        assert snap.device("r1").interface("eth1").shutdown
        snap, _ = apply_changes(snap, [EnableInterface("r1", "eth1")])
        assert not snap.device("r1").interface("eth1").shutdown

    def test_shutdown_invert(self, line3_ospf):
        change = ShutdownInterface("r1", "eth1")
        inverse = change.invert(line3_ospf)
        assert isinstance(inverse, EnableInterface)
        snap, _ = apply_changes(line3_ospf, [change, inverse])
        assert not snap.device("r1").interface("eth1").shutdown

    def test_shutdown_invert_rejects_already_down(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        with pytest.raises(ChangeError):
            ShutdownInterface("r1", "eth1").invert(snap)

    def test_unknown_device(self, line3_ospf):
        with pytest.raises(Exception):
            apply_changes(line3_ospf, [ShutdownInterface("ghost", "eth0")])

    def test_set_ospf_cost(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [SetOspfCost("r0", "eth1", 42)])
        assert snap.device("r0").interface("eth1").ospf_cost == 42

    def test_set_ospf_cost_rejects_non_ospf(self, ring4_bgp):
        with pytest.raises(ChangeError):
            apply_changes(ring4_bgp, [SetOspfCost("r0", "eth1", 42)])

    def test_set_ospf_cost_invert_restores(self, line3_ospf):
        change = SetOspfCost("r0", "eth1", 42)
        inverse = change.invert(line3_ospf)
        snap, _ = apply_changes(line3_ospf, [change, inverse])
        assert snap.device("r0").interface("eth1").ospf_cost == 1


class TestBgpChanges:
    def test_set_local_pref_creates_route_map(self, ring4_bgp):
        snap, _ = apply_changes(ring4_bgp, [SetLocalPref("r0", "eth0", 150)])
        neighbor = snap.device("r0").bgp.neighbors["eth0"]
        assert neighbor.route_map_in == "RM_LP_eth0"
        clause = snap.device("r0").route_maps["RM_LP_eth0"].sorted_clauses()[0]
        assert clause.set_local_pref == 150

    def test_set_local_pref_scoped_match(self, ring4_bgp):
        prefix = Prefix.parse("172.16.2.0/24")
        snap, _ = apply_changes(
            ring4_bgp, [SetLocalPref("r0", "eth0", 150, match_prefix=prefix)]
        )
        clause = snap.device("r0").route_maps["RM_LP_eth0"].sorted_clauses()[0]
        assert clause.match_prefix == prefix

    def test_set_local_pref_rejects_unknown_neighbor(self, ring4_bgp):
        with pytest.raises(ChangeError):
            apply_changes(ring4_bgp, [SetLocalPref("r0", "host0", 150)])

    def test_set_local_pref_rejects_non_bgp(self, line3_ospf):
        with pytest.raises(ChangeError):
            apply_changes(line3_ospf, [SetLocalPref("r0", "eth1", 150)])

    def test_clear_local_pref(self, ring4_bgp):
        snap, _ = apply_changes(
            ring4_bgp,
            [SetLocalPref("r0", "eth0", 150), ClearLocalPref("r0", "eth0")],
        )
        assert snap.device("r0").bgp.neighbors["eth0"].route_map_in is None
        assert "RM_LP_eth0" not in snap.device("r0").route_maps

    def test_set_local_pref_invert_roundtrip(self, ring4_bgp):
        first = SetLocalPref("r0", "eth0", 150)
        snap1, _ = apply_changes(ring4_bgp, [first])
        second = SetLocalPref("r0", "eth0", 200)
        inverse = second.invert(snap1)
        snap2, _ = apply_changes(snap1, [second, inverse])
        clause = snap2.device("r0").route_maps["RM_LP_eth0"].sorted_clauses()[0]
        assert clause.set_local_pref == 150

    def test_network_add_remove(self, ring4_bgp):
        prefix = Prefix.parse("192.168.0.0/24")
        snap, _ = apply_changes(ring4_bgp, [AddBgpNetwork("r0", prefix)])
        assert prefix in snap.device("r0").bgp.networks
        snap, _ = apply_changes(snap, [RemoveBgpNetwork("r0", prefix)])
        assert prefix not in snap.device("r0").bgp.networks

    def test_network_add_duplicate_rejected(self, ring4_bgp):
        prefix = snap_prefix = ring4_bgp.device("r0").bgp.networks[0]
        with pytest.raises(ChangeError):
            apply_changes(ring4_bgp, [AddBgpNetwork("r0", prefix)])

    def test_network_remove_missing_rejected(self, ring4_bgp):
        with pytest.raises(ChangeError):
            apply_changes(
                ring4_bgp, [RemoveBgpNetwork("r0", Prefix.parse("9.9.9.0/24"))]
            )

    def test_neighbor_add_remove(self, ring4_bgp):
        snap, _ = apply_changes(ring4_bgp, [RemoveBgpNeighbor("r0", "eth0")])
        assert "eth0" not in snap.device("r0").bgp.neighbors
        snap, _ = apply_changes(snap, [AddBgpNeighbor("r0", "eth0", 65003)])
        assert snap.device("r0").bgp.neighbors["eth0"].remote_as == 65003

    def test_neighbor_add_duplicate_rejected(self, ring4_bgp):
        with pytest.raises(ChangeError):
            apply_changes(ring4_bgp, [AddBgpNeighbor("r0", "eth0", 1)])

    def test_neighbor_remove_invert(self, ring4_bgp):
        change = RemoveBgpNeighbor("r0", "eth0")
        inverse = change.invert(ring4_bgp)
        snap, _ = apply_changes(ring4_bgp, [change, inverse])
        assert (
            snap.device("r0").bgp.neighbors["eth0"].remote_as
            == ring4_bgp.device("r0").bgp.neighbors["eth0"].remote_as
        )


class TestStaticAndAcl:
    def test_static_add_remove(self, line3_ospf):
        prefix = Prefix.parse("0.0.0.0/0")
        snap, _ = apply_changes(line3_ospf, [AddStaticRoute("r0", prefix, "eth1")])
        assert any(r.prefix == prefix for r in snap.device("r0").static_routes)
        snap, _ = apply_changes(snap, [RemoveStaticRoute("r0", prefix, "eth1")])
        assert not any(r.prefix == prefix for r in snap.device("r0").static_routes)

    def test_static_add_validates_interface(self, line3_ospf):
        with pytest.raises(Exception):
            apply_changes(
                line3_ospf, [AddStaticRoute("r0", Prefix.parse("0.0.0.0/0"), "ghost")]
            )

    def test_static_remove_missing_rejected(self, line3_ospf):
        with pytest.raises(ChangeError):
            apply_changes(
                line3_ospf,
                [RemoveStaticRoute("r0", Prefix.parse("0.0.0.0/0"), "eth1")],
            )

    def test_acl_entry_add_remove_and_bind(self, line3_ospf):
        entry = AclEntry(10, "deny", proto=6)
        snap, _ = apply_changes(
            line3_ospf,
            [AddAclEntry("r0", "A", entry), BindAcl("r0", "eth1", "A", "in")],
        )
        assert snap.device("r0").interface("eth1").acl_in == "A"
        snap, _ = apply_changes(
            snap, [UnbindAcl("r0", "eth1", "in"), RemoveAclEntry("r0", "A", 10)]
        )
        assert snap.device("r0").interface("eth1").acl_in is None
        assert not snap.device("r0").acls["A"].entries

    def test_acl_duplicate_seq_rejected(self, line3_ospf):
        entry = AclEntry(10, "deny")
        snap, _ = apply_changes(line3_ospf, [AddAclEntry("r0", "A", entry)])
        with pytest.raises(ChangeError):
            apply_changes(snap, [AddAclEntry("r0", "A", entry)])

    def test_bind_missing_acl_rejected(self, line3_ospf):
        with pytest.raises(ChangeError):
            apply_changes(line3_ospf, [BindAcl("r0", "eth1", "GHOST")])

    def test_bad_direction_rejected(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf, [AddAclEntry("r0", "A", AclEntry(10, "permit"))]
        )
        with pytest.raises(ChangeError):
            apply_changes(snap, [BindAcl("r0", "eth1", "A", "sideways")])


class TestRedistribution:
    def test_add_remove(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf, [AddRedistribution("r0", "ospf", "static")]
        )
        assert any(
            r.source == "static" for r in snap.device("r0").ospf.redistribute
        )
        snap, _ = apply_changes(
            snap, [RemoveRedistribution("r0", "ospf", "static")]
        )
        assert not snap.device("r0").ospf.redistribute

    def test_add_duplicate_rejected(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf, [AddRedistribution("r0", "ospf", "static")]
        )
        with pytest.raises(ChangeError):
            apply_changes(snap, [AddRedistribution("r0", "ospf", "static")])

    def test_missing_process_rejected(self, line3_ospf):
        with pytest.raises(ChangeError):
            apply_changes(line3_ospf, [AddRedistribution("r0", "bgp", "static")])

    def test_remove_missing_rejected(self, line3_ospf):
        with pytest.raises(ChangeError):
            apply_changes(
                line3_ospf, [RemoveRedistribution("r0", "ospf", "static")]
            )


class TestComposite:
    def test_apply_order(self, line3_ospf):
        composite = CompositeChange(
            [ShutdownInterface("r0", "eth1"), EnableInterface("r0", "eth1")],
            label="bounce",
        )
        snap, _ = apply_changes(line3_ospf, [composite])
        assert not snap.device("r0").interface("eth1").shutdown

    def test_invert_reverses(self, line3_ospf):
        composite = CompositeChange(
            [SetOspfCost("r0", "eth1", 5), SetOspfCost("r0", "eth1", 9)]
        )
        inverse = composite.invert(line3_ospf)
        snap, _ = apply_changes(line3_ospf, [composite, inverse])
        assert snap.device("r0").interface("eth1").ospf_cost == 1

    def test_describe_mentions_label(self):
        composite = CompositeChange([], label="phase-1")
        assert "phase-1" in composite.describe()

    def test_apply_changes_does_not_mutate_original(self, line3_ospf):
        apply_changes(line3_ospf, [ShutdownInterface("r0", "eth1")])
        assert not line3_ospf.device("r0").interface("eth1").shutdown
