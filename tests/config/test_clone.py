"""Deep-clone semantics of snapshots (the hand-rolled fast copy must be as
deep as ``copy.deepcopy`` for every mutable configuration field)."""

import copy

import pytest

from repro.config.changes import apply_changes
from repro.config.diff import diff_snapshots
from repro.config.schema import (
    Acl,
    AclEntry,
    RouteMap,
    RouteMapClause,
    StaticRoute,
)
from repro.net.addr import Prefix
from repro.net.topologies import ring
from repro.workloads import bgp_snapshot, ospf_snapshot
from repro.workloads.enterprise import build_enterprise


@pytest.fixture
def rich_snapshot():
    """A snapshot exercising every nested configuration structure."""
    snapshot = bgp_snapshot(ring(4)).clone()
    device = snapshot.device("r0")
    device.acls["A"] = Acl("A", entries=[AclEntry(10, "deny", proto=6)])
    device.interfaces["eth0"].acl_in = "A"
    device.route_maps["RM"] = RouteMap(
        "RM", clauses=[RouteMapClause(10, "permit", set_local_pref=150)]
    )
    device.bgp.neighbors["eth0"].route_map_in = "RM"
    device.bgp.aggregates.append(Prefix.parse("172.16.0.0/16"))
    device.static_routes.append(
        StaticRoute(Prefix.parse("0.0.0.0/0"), "eth1")
    )
    return snapshot


class TestCloneDepth:
    def test_clone_equals_deepcopy_structurally(self, rich_snapshot):
        clone = rich_snapshot.clone()
        reference = copy.deepcopy(rich_snapshot)
        assert clone.devices == reference.devices
        assert diff_snapshots(clone, rich_snapshot).is_empty()

    def test_interface_mutation_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").interfaces["eth0"].shutdown = True
        assert not rich_snapshot.device("r0").interfaces["eth0"].shutdown

    def test_acl_entry_mutation_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").acls["A"].entries.append(AclEntry(20, "permit"))
        assert len(rich_snapshot.device("r0").acls["A"].entries) == 1

    def test_route_map_clause_mutation_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").route_maps["RM"].clauses[0].set_local_pref = 999
        assert (
            rich_snapshot.device("r0").route_maps["RM"].clauses[0].set_local_pref
            == 150
        )

    def test_neighbor_mutation_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").bgp.neighbors["eth0"].route_map_in = None
        assert (
            rich_snapshot.device("r0").bgp.neighbors["eth0"].route_map_in
            == "RM"
        )

    def test_lists_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").bgp.networks.clear()
        clone.device("r0").bgp.aggregates.clear()
        clone.device("r0").static_routes.clear()
        clone.device("r0").bgp.redistribute.append(None)  # type: ignore
        original = rich_snapshot.device("r0")
        assert original.bgp.networks
        assert original.bgp.aggregates
        assert original.static_routes
        assert not original.bgp.redistribute

    def test_static_route_mutation_isolated(self, rich_snapshot):
        clone = rich_snapshot.clone()
        clone.device("r0").static_routes[0].admin_distance = 200
        assert rich_snapshot.device("r0").static_routes[0].admin_distance == 1

    def test_ospf_clone(self):
        snapshot = ospf_snapshot(ring(4))
        clone = snapshot.clone()
        clone.device("r0").ospf.process_id = 99
        assert snapshot.device("r0").ospf.process_id == 1

    def test_enterprise_clone_round_trip(self):
        net = build_enterprise()
        clone = net.snapshot.clone()
        assert clone.devices == copy.deepcopy(net.snapshot).devices
        clone.validate()

    def test_apply_changes_still_isolating(self, rich_snapshot):
        from repro.config.changes import ShutdownInterface

        changed, _ = apply_changes(
            rich_snapshot, [ShutdownInterface("r1", "eth1")]
        )
        assert changed.device("r1").interfaces["eth1"].shutdown
        assert not rich_snapshot.device("r1").interfaces["eth1"].shutdown
