"""Tests for snapshot line-diffing."""

from repro.config.changes import apply_changes, SetOspfCost, ShutdownInterface
from repro.config.diff import diff_snapshots, snapshot_lines


class TestDiff:
    def test_no_change_is_empty(self, line3_ospf):
        diff = diff_snapshots(line3_ospf, line3_ospf.clone())
        assert diff.is_empty()
        assert diff.size() == 0
        assert str(diff) == "(no changes)"

    def test_shutdown_is_one_inserted_line(self, line3_ospf):
        new, diff = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        assert len(diff.inserted) == 1
        assert not diff.deleted
        line = diff.inserted[0]
        assert line.device == "r1"
        assert line.stanza == "interface eth1"
        assert line.text.strip() == "shutdown"

    def test_cost_change_is_insert_only(self, line3_ospf):
        # Cost 1 is the default and not rendered, so 1 -> 100 is one insert.
        new, diff = apply_changes(line3_ospf, [SetOspfCost("r1", "eth1", 100)])
        assert len(diff.inserted) == 1
        assert len(diff.deleted) == 0

    def test_cost_modification_is_delete_plus_insert(self, line3_ospf):
        snap1, _ = apply_changes(line3_ospf, [SetOspfCost("r1", "eth1", 5)])
        snap2, diff = apply_changes(snap1, [SetOspfCost("r1", "eth1", 100)])
        assert len(diff.inserted) == 1
        assert len(diff.deleted) == 1

    def test_diff_direction(self, line3_ospf):
        new, forward = apply_changes(line3_ospf, [ShutdownInterface("r0", "eth1")])
        backward = diff_snapshots(new, line3_ospf)
        assert backward.inserted == forward.deleted
        assert backward.deleted == forward.inserted

    def test_devices_touched(self, line3_ospf):
        new, diff = apply_changes(
            line3_ospf,
            [ShutdownInterface("r0", "eth1"), ShutdownInterface("r2", "eth0")],
        )
        assert diff.devices_touched() == ["r0", "r2"]

    def test_summary_counts(self, line3_ospf):
        _, diff = apply_changes(line3_ospf, [ShutdownInterface("r0", "eth1")])
        assert diff.summary() == "+1/-0 lines on 1 device(s)"

    def test_snapshot_lines_counts_devices(self, line3_ospf):
        lines = snapshot_lines(line3_ospf)
        devices = {line.device for line in lines}
        assert devices == {"r0", "r1", "r2"}
