"""Tests for snapshot persistence (topology.json + configs/*.cfg)."""

import json

import pytest

from repro.config.changes import ShutdownInterface, apply_changes
from repro.config.io import (
    CONFIG_DIR,
    TOPOLOGY_FILE,
    load_snapshot,
    save_snapshot,
    topology_from_dict,
    topology_to_dict,
)
from repro.config.schema import ConfigError
from repro.net.topologies import fat_tree, line, ring
from repro.workloads import bgp_snapshot, ospf_snapshot


def snapshots_equal(a, b) -> bool:
    from repro.config.diff import diff_snapshots

    return diff_snapshots(a, b).is_empty() and topology_to_dict(
        a.topology
    ) == topology_to_dict(b.topology)


class TestTopologySerialization:
    def test_round_trip(self):
        topology = ring(4).topology
        restored = topology_from_dict(topology_to_dict(topology))
        assert topology_to_dict(restored) == topology_to_dict(topology)

    def test_round_trip_fattree(self):
        topology = fat_tree(4).topology
        restored = topology_from_dict(topology_to_dict(topology))
        assert restored.num_nodes() == topology.num_nodes()
        assert restored.num_links() == topology.num_links()

    def test_dict_is_json_serializable(self):
        json.dumps(topology_to_dict(line(3).topology))


class TestSnapshotPersistence:
    @pytest.mark.parametrize("protocol", ["ospf", "bgp"])
    def test_round_trip(self, tmp_path, protocol):
        labeled = ring(4)
        snapshot = (
            ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
        )
        save_snapshot(snapshot, tmp_path / "snap")
        restored = load_snapshot(tmp_path / "snap")
        assert snapshots_equal(snapshot, restored)

    def test_layout(self, tmp_path):
        labeled = line(2)
        save_snapshot(ospf_snapshot(labeled), tmp_path / "snap")
        assert (tmp_path / "snap" / TOPOLOGY_FILE).exists()
        assert sorted(
            p.name for p in (tmp_path / "snap" / CONFIG_DIR).glob("*.cfg")
        ) == ["r0.cfg", "r1.cfg"]

    def test_resave_removes_stale_configs(self, tmp_path):
        labeled = line(3)
        snapshot = ospf_snapshot(labeled)
        save_snapshot(snapshot, tmp_path / "snap")
        smaller = ospf_snapshot(labeled)
        del smaller.devices["r2"]
        save_snapshot(smaller, tmp_path / "snap")
        names = sorted(
            p.name for p in (tmp_path / "snap" / CONFIG_DIR).glob("*.cfg")
        )
        assert names == ["r0.cfg", "r1.cfg"]

    def test_edited_config_loads_differently(self, tmp_path):
        labeled = line(3)
        snapshot = ospf_snapshot(labeled)
        root = save_snapshot(snapshot, tmp_path / "snap")
        cfg = root / CONFIG_DIR / "r1.cfg"
        cfg.write_text(cfg.read_text().replace(
            "interface eth1", "interface eth1\n shutdown"
        ))
        restored = load_snapshot(root)
        assert restored.device("r1").interface("eth1").shutdown

    def test_load_missing_topology(self, tmp_path):
        with pytest.raises(ConfigError):
            load_snapshot(tmp_path)

    def test_load_missing_configs_dir(self, tmp_path):
        save_snapshot(ospf_snapshot(line(2)), tmp_path / "snap")
        import shutil

        shutil.rmtree(tmp_path / "snap" / CONFIG_DIR)
        with pytest.raises(ConfigError):
            load_snapshot(tmp_path / "snap")

    def test_hostname_filename_mismatch(self, tmp_path):
        root = save_snapshot(ospf_snapshot(line(2)), tmp_path / "snap")
        (root / CONFIG_DIR / "r0.cfg").rename(root / CONFIG_DIR / "other.cfg")
        with pytest.raises(ConfigError):
            load_snapshot(root)

    def test_changes_survive_round_trip(self, tmp_path):
        labeled = ring(4)
        snapshot = ospf_snapshot(labeled)
        changed, _ = apply_changes(snapshot, [ShutdownInterface("r1", "eth1")])
        save_snapshot(changed, tmp_path / "snap")
        restored = load_snapshot(tmp_path / "snap")
        assert restored.device("r1").interface("eth1").shutdown
