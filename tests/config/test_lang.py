"""Round-trip and error tests for the configuration dialect."""

import pytest

from repro.config.lang import ParseError, parse_device, render_device
from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Redistribution,
    RouteMap,
    RouteMapClause,
    StaticRoute,
)
from repro.net.addr import Prefix, parse_ipv4
from repro.workloads import bgp_snapshot, ospf_snapshot


def full_device() -> DeviceConfig:
    """A device exercising every configuration feature."""
    device = DeviceConfig(hostname="r1")
    device.interfaces["eth0"] = InterfaceConfig(
        "eth0",
        prefix=Prefix.parse("10.0.0.0/30"),
        address=parse_ipv4("10.0.0.1"),
        ospf_enabled=True,
        ospf_cost=5,
        acl_in="BLOCK",
    )
    device.interfaces["eth1"] = InterfaceConfig(
        "eth1",
        prefix=Prefix.parse("10.0.0.4/30"),
        address=parse_ipv4("10.0.0.5"),
        shutdown=True,
        acl_out="BLOCK",
    )
    device.ospf = OspfProcess(
        process_id=1, redistribute=[Redistribution("static", 20)]
    )
    device.bgp = BgpProcess(asn=65001, networks=[Prefix.parse("172.16.0.0/24")])
    device.bgp.add_neighbor(
        BgpNeighbor("eth0", 65002, route_map_in="RM_IN", route_map_out="RM_OUT")
    )
    device.bgp.redistribute.append(Redistribution("ospf", 30))
    device.acls["BLOCK"] = Acl(
        "BLOCK",
        entries=[
            AclEntry(10, "deny", proto=6, dst=Prefix.parse("172.16.1.0/24"),
                     dst_port=(80, 80)),
            AclEntry(15, "deny", proto=17, src=Prefix.parse("172.16.9.0/24"),
                     dst_port=(1000, 2000)),
            AclEntry(20, "permit"),
        ],
    )
    device.route_maps["RM_IN"] = RouteMap(
        "RM_IN",
        clauses=[
            RouteMapClause(10, "permit", match_prefix=Prefix.parse("172.16.0.0/16"),
                           set_local_pref=150),
            RouteMapClause(20, "deny"),
        ],
    )
    device.route_maps["RM_OUT"] = RouteMap(
        "RM_OUT", clauses=[RouteMapClause(10, "permit", set_metric=5)]
    )
    device.static_routes.append(StaticRoute(Prefix.parse("0.0.0.0/0"), "eth0"))
    device.static_routes.append(
        StaticRoute(Prefix.parse("192.168.0.0/16"), "eth1", admin_distance=200)
    )
    return device


class TestRoundTrip:
    def test_full_device(self):
        device = full_device()
        assert parse_device(render_device(device)) == device

    def test_render_is_canonical(self):
        device = full_device()
        text = render_device(device)
        assert render_device(parse_device(text)) == text

    def test_minimal_device(self):
        device = DeviceConfig(hostname="min")
        assert parse_device(render_device(device)) == device

    def test_ospf_snapshot_devices(self, line3):
        for device in ospf_snapshot(line3).iter_devices():
            assert parse_device(render_device(device)) == device

    def test_bgp_snapshot_devices(self, ring4):
        for device in bgp_snapshot(ring4).iter_devices():
            assert parse_device(render_device(device)) == device

    def test_blank_lines_and_comments_ignored(self):
        device = parse_device("hostname x\n!\n\n! comment\n")
        assert device.hostname == "x"


class TestParseErrors:
    def test_missing_hostname(self):
        with pytest.raises(ParseError):
            parse_device("interface eth0\n")
        with pytest.raises(ParseError):
            parse_device("")

    def test_indented_line_outside_stanza(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\n ip address 1.2.3.4/24\n")

    def test_unknown_top_level(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\nfrobnicate\n")

    def test_unknown_interface_subcommand(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\ninterface eth0\n speed 100\n")

    def test_malformed_ip_address(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\ninterface eth0\n ip address 10.0.0.1\n")

    def test_malformed_acl_entry(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\nip access-list A\n 10 permit\n")

    def test_acl_bad_action(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\nip access-list A\n 10 block ip any any\n")

    def test_route_map_before_remote_as(self):
        with pytest.raises(ParseError):
            parse_device(
                "hostname x\nrouter bgp 1\n neighbor eth0 route-map RM in\n"
            )

    def test_bad_route_map_header(self):
        with pytest.raises(ParseError):
            parse_device("hostname x\nroute-map RM accept 10\n")

    def test_bad_access_group_direction(self):
        with pytest.raises(ParseError):
            parse_device(
                "hostname x\ninterface eth0\n ip access-group A sideways\n"
            )


class TestSpecificForms:
    def test_static_route_with_distance(self):
        device = parse_device("hostname x\ninterface e0\nip route 0.0.0.0/0 e0 200\n")
        assert device.static_routes[0].admin_distance == 200

    def test_acl_port_range(self):
        device = parse_device(
            "hostname x\nip access-list A\n 10 deny 6 any any range 100 200\n"
        )
        assert device.acls["A"].entries[0].dst_port == (100, 200)

    def test_ip_network_form(self):
        device = parse_device(
            "hostname x\ninterface e0\n ip network 10.0.0.0/24\n"
        )
        iface = device.interfaces["e0"]
        assert iface.prefix == Prefix.parse("10.0.0.0/24")
        assert iface.address is None

    def test_default_ospf_cost_not_rendered(self):
        device = DeviceConfig(hostname="x")
        device.interfaces["e0"] = InterfaceConfig("e0", ospf_enabled=True)
        device.ospf = OspfProcess()
        assert "cost" not in render_device(device)
