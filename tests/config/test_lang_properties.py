"""Property-based round-trip: any well-formed DeviceConfig survives
render -> parse unchanged, and rendering is canonical (idempotent)."""

from hypothesis import given, settings, strategies as st

from repro.config.lang import parse_device, render_device
from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Redistribution,
    RouteMap,
    RouteMapClause,
    StaticRoute,
)
from repro.net.addr import Prefix

names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
if_names = st.from_regex(r"(eth|up|down|host)[0-9]{1,2}", fullmatch=True)
addresses = st.integers(0, (1 << 32) - 1)
plens = st.integers(0, 32)


@st.composite
def prefixes(draw):
    return Prefix.from_address_int(draw(addresses), draw(plens))


@st.composite
def interface_configs(draw, name):
    prefix = draw(st.one_of(st.none(), prefixes()))
    address = None
    if prefix is not None:
        address = prefix.first() + draw(
            st.integers(0, max(0, prefix.num_addresses() - 1))
        )
    ospf_enabled = draw(st.booleans())
    return InterfaceConfig(
        name=name,
        prefix=prefix,
        address=address,
        shutdown=draw(st.booleans()),
        ospf_enabled=ospf_enabled,
        # The dialect renders the cost only under "ip ospf enable" (it is
        # meaningless otherwise), so hidden state must not be generated.
        ospf_cost=draw(st.integers(1, 65535)) if ospf_enabled else 1,
    )


@st.composite
def acl_entries(draw, seq):
    return AclEntry(
        seq=seq,
        action=draw(st.sampled_from(["permit", "deny"])),
        proto=draw(st.one_of(st.none(), st.integers(0, 255))),
        src=draw(st.one_of(st.none(), prefixes())),
        dst=draw(st.one_of(st.none(), prefixes())),
        dst_port=draw(
            st.one_of(
                st.none(),
                st.tuples(st.integers(0, 65535), st.integers(0, 65535)).map(
                    lambda t: (min(t), max(t))
                ),
            )
        ),
    )


@st.composite
def route_map_clauses(draw, seq):
    return RouteMapClause(
        seq=seq,
        action=draw(st.sampled_from(["permit", "deny"])),
        match_prefix=draw(st.one_of(st.none(), prefixes())),
        set_local_pref=draw(st.one_of(st.none(), st.integers(0, 1000))),
        set_metric=draw(st.one_of(st.none(), st.integers(0, 10_000))),
    )


@st.composite
def device_configs(draw):
    device = DeviceConfig(hostname=draw(names))
    iface_names = draw(st.sets(if_names, min_size=1, max_size=4))
    for name in sorted(iface_names):
        device.interfaces[name] = draw(interface_configs(name))
    has_any_ospf = any(i.ospf_enabled for i in device.interfaces.values())
    if has_any_ospf or draw(st.booleans()):
        device.ospf = OspfProcess(
            process_id=draw(st.integers(1, 100)),
            redistribute=[
                Redistribution(source, draw(st.integers(1, 100)))
                for source in draw(
                    st.sets(st.sampled_from(["static", "connected", "bgp"]),
                            max_size=2)
                )
            ],
        )
    else:
        # The dialect renders "ip ospf enable" only under a process; strip.
        for iface in device.interfaces.values():
            iface.ospf_enabled = False
    if draw(st.booleans()):
        bgp = BgpProcess(asn=draw(st.integers(1, 65535)))
        for prefix in draw(st.sets(prefixes(), max_size=3)):
            bgp.networks.append(prefix)
        rm_names = []
        for index in range(draw(st.integers(0, 2))):
            rm_name = f"RM{index}"
            clause_seqs = sorted(draw(st.sets(st.integers(1, 100),
                                              min_size=1, max_size=3)))
            device.route_maps[rm_name] = RouteMap(
                rm_name,
                clauses=[draw(route_map_clauses(seq)) for seq in clause_seqs],
            )
            rm_names.append(rm_name)
        for iface in sorted(draw(st.sets(st.sampled_from(sorted(iface_names)),
                                         max_size=2))):
            neighbor = BgpNeighbor(iface, draw(st.integers(1, 65535)))
            if rm_names and draw(st.booleans()):
                neighbor.route_map_in = rm_names[0]
            if rm_names and draw(st.booleans()):
                neighbor.route_map_out = rm_names[-1]
            bgp.add_neighbor(neighbor)
        device.bgp = bgp
    for index in range(draw(st.integers(0, 2))):
        acl_name = f"ACL{index}"
        seqs = sorted(draw(st.sets(st.integers(1, 1000), min_size=1, max_size=3)))
        device.acls[acl_name] = Acl(
            acl_name, entries=[draw(acl_entries(seq)) for seq in seqs]
        )
    acl_names = sorted(device.acls)
    if acl_names:
        for iface in device.interfaces.values():
            if draw(st.booleans()):
                iface.acl_in = draw(st.sampled_from(acl_names))
            if draw(st.booleans()):
                iface.acl_out = draw(st.sampled_from(acl_names))
    for _ in range(draw(st.integers(0, 2))):
        if draw(st.booleans()):
            device.static_routes.append(
                StaticRoute(
                    draw(prefixes()),
                    draw(st.sampled_from(sorted(iface_names))),
                    admin_distance=draw(st.integers(1, 255)),
                )
            )
        else:
            device.static_routes.append(
                StaticRoute(
                    draw(prefixes()),
                    next_hop_ip=draw(addresses),
                    admin_distance=draw(st.integers(1, 255)),
                )
            )
    return device


def _normalized(device: DeviceConfig) -> DeviceConfig:
    """Rendering canonicalizes the static-route order; normalize the input
    the same way so structural equality is meaningful."""

    def key(route: StaticRoute):
        from repro.net.addr import format_ipv4

        next_hop = (
            route.next_hop_interface
            if route.next_hop_interface is not None
            else format_ipv4(route.next_hop_ip)
        )
        return (route.prefix, next_hop)

    device.static_routes = sorted(device.static_routes, key=key)
    if device.bgp is not None:
        device.bgp.networks = sorted(device.bgp.networks)
    return device


@given(device_configs())
@settings(max_examples=60, deadline=None)
def test_render_parse_round_trip(device):
    assert parse_device(render_device(device)) == _normalized(device)


@given(device_configs())
@settings(max_examples=30, deadline=None)
def test_render_is_canonical(device):
    text = render_device(device)
    assert render_device(parse_device(text)) == text


@given(device_configs())
@settings(max_examples=30, deadline=None)
def test_line_diff_of_identical_configs_is_empty(device):
    from repro.config.lang import device_lines

    first = list(device_lines(device))
    second = list(device_lines(parse_device(render_device(device))))
    assert first == second
