"""Parser robustness: arbitrary text must either parse or raise
``ParseError`` / ``ConfigError`` — never crash with an unrelated exception,
and never produce a config that fails to re-render."""

from hypothesis import given, settings, strategies as st

from repro.config.lang import parse_device, render_device
from repro.config.schema import ConfigError

config_words = st.sampled_from(
    [
        "hostname", "interface", "ip", "address", "route", "router", "bgp",
        "ospf", "neighbor", "remote-as", "route-map", "permit", "deny",
        "access-list", "shutdown", "enable", "cost", "network", "metric",
        "redistribute", "static", "aggregate-address", "set",
        "local-preference", "match", "prefix", "eth0", "10.0.0.0/8",
        "10.0.0.1/24", "1.2.3.4", "65001", "10", "in", "out", "any", "eq",
        "range", "80", "!",
    ]
)


@st.composite
def config_like_text(draw):
    lines = []
    for _ in range(draw(st.integers(1, 12))):
        indent = " " if draw(st.booleans()) else ""
        words = draw(st.lists(config_words, min_size=1, max_size=6))
        lines.append(indent + " ".join(words))
    return "\n".join(lines) + "\n"


@given(config_like_text())
@settings(max_examples=150, deadline=None)
def test_parse_never_crashes(text):
    try:
        device = parse_device(text)
    except ConfigError:
        return  # rejection is fine (ParseError subclasses ConfigError)
    # Anything accepted must render and re-parse to the same structure.
    assert parse_device(render_device(device)) == device


@given(st.text(max_size=200))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_rejected_or_parsed(text):
    try:
        parse_device(text)
    except ConfigError:
        pass


@given(st.binary(max_size=60).map(lambda b: b.decode("latin-1")))
@settings(max_examples=60, deadline=None)
def test_binaryish_text(text):
    try:
        parse_device(text)
    except ConfigError:
        pass
