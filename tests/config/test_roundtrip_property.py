"""Property-style round-trip test: ``parse(render(config)) == config``.

Instead of synthesizing configs token-by-token (which would mostly produce
inputs the renderer can never emit), we sample the *workload generators* —
topology family x protocol x a randomized prefix of the paper's change
workload — and assert the canonical rendering of every resulting device
parses back to an identical ``DeviceConfig``.  With hypothesis available the
sampling is driven by strategies; otherwise a seeded fallback grid runs.
"""

from __future__ import annotations

import random

import pytest

from repro.config.changes import apply_changes
from repro.config.lang import parse_device, render_device
from repro.config.schema import Snapshot
from repro.net.topologies import fat_tree, ring
from repro.workloads import (
    acl_changes,
    bgp_snapshot,
    build_enterprise,
    ospf_snapshot,
    paper_changes,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False


def base_snapshot(family: str, protocol: str) -> Snapshot:
    labeled = fat_tree(4) if family == "fat_tree" else ring(6)
    build = ospf_snapshot if protocol == "ospf" else bgp_snapshot
    return build(labeled)


def perturbed_snapshot(
    family: str, protocol: str, seed: int, take: int
) -> Snapshot:
    labeled = fat_tree(4) if family == "fat_tree" else ring(6)
    snapshot = base_snapshot(family, protocol)
    pool = [c for _, c in paper_changes(labeled, protocol, 4, seed=seed)]
    pool.extend(acl_changes(labeled, count=3, seed=seed + 7))
    random.Random(seed).shuffle(pool)
    for change in pool[:take]:
        snapshot, _ = apply_changes(snapshot, [change])
    return snapshot


def assert_roundtrip(snapshot: Snapshot) -> None:
    for name, device in snapshot.devices.items():
        rendered = render_device(device)
        reparsed = parse_device(rendered)
        assert reparsed == device, f"round trip diverged for {name}"
        # the canonical rendering must itself be a fixed point
        assert render_device(reparsed) == rendered


@pytest.mark.parametrize("family", ["ring", "fat_tree"])
@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
def test_roundtrip_base_snapshots(family, protocol):
    assert_roundtrip(base_snapshot(family, protocol))


def test_roundtrip_enterprise():
    assert_roundtrip(build_enterprise().snapshot)


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(["ring", "fat_tree"]),
        protocol=st.sampled_from(["ospf", "bgp"]),
        seed=st.integers(min_value=0, max_value=2**16),
        take=st.integers(min_value=0, max_value=8),
    )
    def test_roundtrip_randomized_workloads(family, protocol, seed, take):
        assert_roundtrip(perturbed_snapshot(family, protocol, seed, take))

else:  # pragma: no cover - seeded fallback grid

    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_randomized_workloads(seed):
        family = ["ring", "fat_tree"][seed % 2]
        protocol = ["ospf", "bgp"][(seed // 2) % 2]
        assert_roundtrip(
            perturbed_snapshot(family, protocol, seed, take=seed + 2)
        )
