"""Validation tests for the configuration schema."""

import pytest

from repro.config.schema import (
    Acl,
    BgpNeighbor,
    BgpProcess,
    ConfigError,
    DeviceConfig,
    InterfaceConfig,
    RouteMap,
    Snapshot,
    StaticRoute,
)
from repro.net.addr import Prefix
from repro.net.topology import Topology


def device_with_iface(name="r1", iface="eth0") -> DeviceConfig:
    device = DeviceConfig(hostname=name)
    device.interfaces[iface] = InterfaceConfig(iface)
    return device


class TestDeviceValidation:
    def test_valid_minimal(self):
        device_with_iface().validate()

    def test_missing_acl_binding(self):
        device = device_with_iface()
        device.interfaces["eth0"].acl_in = "GHOST"
        with pytest.raises(ConfigError):
            device.validate()

    def test_missing_out_acl_binding(self):
        device = device_with_iface()
        device.interfaces["eth0"].acl_out = "GHOST"
        with pytest.raises(ConfigError):
            device.validate()

    def test_bgp_neighbor_on_missing_interface(self):
        device = device_with_iface()
        device.bgp = BgpProcess(asn=1)
        device.bgp.add_neighbor(BgpNeighbor("ghost0", 2))
        with pytest.raises(ConfigError):
            device.validate()

    def test_bgp_neighbor_missing_route_map(self):
        device = device_with_iface()
        device.bgp = BgpProcess(asn=1)
        device.bgp.add_neighbor(BgpNeighbor("eth0", 2, route_map_in="GHOST"))
        with pytest.raises(ConfigError):
            device.validate()

    def test_bgp_neighbor_route_map_present(self):
        device = device_with_iface()
        device.bgp = BgpProcess(asn=1)
        device.route_maps["RM"] = RouteMap("RM")
        device.bgp.add_neighbor(BgpNeighbor("eth0", 2, route_map_out="RM"))
        device.validate()

    def test_static_route_missing_interface(self):
        device = device_with_iface()
        device.static_routes.append(StaticRoute(Prefix.parse("0.0.0.0/0"), "ghost"))
        with pytest.raises(ConfigError):
            device.validate()


class TestAccessors:
    def test_interface_missing(self):
        with pytest.raises(ConfigError):
            device_with_iface().interface("nope")

    def test_ensure_interface_creates(self):
        device = DeviceConfig(hostname="x")
        iface = device.ensure_interface("e9")
        assert iface is device.interfaces["e9"]
        assert device.ensure_interface("e9") is iface

    def test_route_map_missing(self):
        with pytest.raises(ConfigError):
            device_with_iface().route_map("nope")

    def test_acl_missing(self):
        with pytest.raises(ConfigError):
            device_with_iface().acl("nope")

    def test_route_map_clause_missing(self):
        rm = RouteMap("RM")
        with pytest.raises(ConfigError):
            rm.clause(10)

    def test_acl_sorted_entries(self):
        from repro.config.schema import AclEntry

        acl = Acl("A", entries=[AclEntry(20, "permit"), AclEntry(10, "deny")])
        assert [e.seq for e in acl.sorted_entries()] == [10, 20]


class TestSnapshot:
    def test_duplicate_device(self):
        snapshot = Snapshot(Topology())
        snapshot.add_device(DeviceConfig(hostname="a"))
        with pytest.raises(ConfigError):
            snapshot.add_device(DeviceConfig(hostname="a"))

    def test_missing_device(self):
        with pytest.raises(ConfigError):
            Snapshot(Topology()).device("nope")

    def test_clone_is_deep_for_devices(self):
        snapshot = Snapshot(Topology())
        snapshot.add_device(device_with_iface())
        clone = snapshot.clone()
        clone.device("r1").interfaces["eth0"].shutdown = True
        assert not snapshot.device("r1").interfaces["eth0"].shutdown

    def test_clone_shares_topology(self):
        topo = Topology()
        snapshot = Snapshot(topo)
        assert snapshot.clone().topology is topo

    def test_device_names_sorted(self):
        snapshot = Snapshot(Topology())
        snapshot.add_device(DeviceConfig(hostname="b"))
        snapshot.add_device(DeviceConfig(hostname="a"))
        assert snapshot.device_names() == ["a", "b"]
