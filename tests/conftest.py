"""Shared fixtures.

Expensive artifacts (compiled control planes, fat-tree snapshots) are
session- or module-scoped; tests must not mutate them in place — use
``snapshot.clone()`` or ``apply_changes`` (which clones).
"""

from __future__ import annotations

import pytest

from repro.net import fat_tree, grid, line, ring
from repro.workloads import bgp_snapshot, ospf_snapshot


@pytest.fixture(scope="session")
def line3():
    return line(3)


@pytest.fixture(scope="session")
def ring4():
    return ring(4)


@pytest.fixture(scope="session")
def grid33():
    return grid(3, 3)


@pytest.fixture(scope="session")
def fattree4():
    return fat_tree(4)


@pytest.fixture(scope="session")
def line3_ospf(line3):
    return ospf_snapshot(line3)


@pytest.fixture(scope="session")
def ring4_bgp(ring4):
    return bgp_snapshot(ring4)


@pytest.fixture(scope="session")
def fattree4_ospf(fattree4):
    return ospf_snapshot(fattree4)


@pytest.fixture(scope="session")
def fattree4_bgp(fattree4):
    return bgp_snapshot(fattree4)
