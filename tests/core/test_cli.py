"""Tests for the command line interface."""

import pytest

from repro.cli import main
from repro.config.io import CONFIG_DIR, load_snapshot, save_snapshot
from repro.net.topologies import line


@pytest.fixture
def base_dir(tmp_path):
    path = tmp_path / "base"
    assert main(["generate", "--topology", "line:3", "--protocol", "ospf",
                 "--out", str(path)]) == 0
    return path


def edit_config(snapshot_dir, hostname, transform):
    cfg = snapshot_dir / CONFIG_DIR / f"{hostname}.cfg"
    cfg.write_text(transform(cfg.read_text()))


class TestGenerate:
    @pytest.mark.parametrize(
        "spec", ["line:3", "ring:4", "grid:2x2", "random:5:2", "fat-tree:2"]
    )
    def test_generate_topologies(self, tmp_path, spec):
        out = tmp_path / "snap"
        assert main(["generate", "--topology", spec, "--out", str(out)]) == 0
        load_snapshot(out)

    def test_generate_bgp(self, tmp_path):
        out = tmp_path / "snap"
        assert main(["generate", "--topology", "ring:4", "--protocol", "bgp",
                     "--out", str(out)]) == 0
        snapshot = load_snapshot(out)
        assert snapshot.device("r0").bgp is not None

    def test_bad_topology_spec(self, tmp_path):
        assert main(["generate", "--topology", "moebius:4",
                     "--out", str(tmp_path / "x")]) == 2
        assert main(["generate", "--topology", "ring:many",
                     "--out", str(tmp_path / "y")]) == 2


class TestShowFib(object):
    def test_prints_entries(self, base_dir, capsys):
        assert main(["show-fib", str(base_dir)]) == 0
        out = capsys.readouterr().out
        assert "172.16.2.0/24" in out

    def test_node_filter(self, base_dir, capsys):
        assert main(["show-fib", str(base_dir), "--node", "r0"]) == 0
        out = capsys.readouterr().out
        assert all(line.startswith("r0:") for line in out.strip().splitlines())


class TestDiffAndVerify:
    def test_diff_empty(self, base_dir, tmp_path, capsys):
        clone = tmp_path / "clone"
        save_snapshot(load_snapshot(base_dir), clone)
        assert main(["diff", str(base_dir), str(clone)]) == 0

    def test_diff_and_verify_shutdown(self, base_dir, tmp_path, capsys):
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace("interface eth1",
                                      "interface eth1\n shutdown"),
        )
        assert main(["diff", str(base_dir), str(changed)]) == 1
        out = capsys.readouterr().out
        assert "shutdown" in out

        # Cutting the line leaves no loop and no blackhole (routes to the
        # lost prefix are withdrawn, so nothing forwards-then-drops): the
        # invariants-only verify passes...
        code = main(["verify", str(base_dir), str(changed)])
        out = capsys.readouterr().out
        assert code == 0
        assert "NEWLY VIOLATED" not in out

    def test_verify_all_pairs(self, base_dir, tmp_path, capsys):
        # ... while --all-pairs reachability catches the partition.
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace("interface eth1",
                                      "interface eth1\n shutdown"),
        )
        code = main(["verify", "--all-pairs", str(base_dir), str(changed)])
        out = capsys.readouterr().out
        assert code == 1
        assert "NEWLY VIOLATED" in out
        assert "reach:" in out

    def test_verify_clean_change(self, base_dir, tmp_path, capsys):
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace(" ip ospf enable",
                                      " ip ospf enable\n ip ospf cost 5", 1),
        )
        assert main(["verify", str(base_dir), str(changed)]) == 0


class TestMine:
    def test_line_is_fragile(self, base_dir, capsys):
        code = main(["mine", str(base_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FRAGILE" in out

    def test_ring_is_fault_tolerant(self, tmp_path, capsys):
        out_dir = tmp_path / "ring"
        main(["generate", "--topology", "ring:4", "--out", str(out_dir)])
        capsys.readouterr()
        code = main(["mine", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "always:" in out
        assert "width >= 1" in out

    def test_no_widths_flag(self, tmp_path, capsys):
        out_dir = tmp_path / "ring"
        main(["generate", "--topology", "ring:4", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["mine", "--no-widths", str(out_dir)]) == 0
        assert "width" not in capsys.readouterr().out


class TestTrace:
    def test_delivered(self, base_dir, capsys):
        code = main(["trace", str(base_dir), "--source", "r0",
                     "--dst", "172.16.2.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered" in out
        assert "r0" in out and "r2" in out

    def test_unroutable(self, base_dir, capsys):
        code = main(["trace", str(base_dir), "--source", "r0",
                     "--dst", "8.8.8.8"])
        out = capsys.readouterr().out
        assert code == 1
        assert "dropped" in out


class TestProfile:
    def test_profile_prints_stages_and_work_counters(self, tmp_path, capsys):
        snap = tmp_path / "ft"
        main(["generate", "--topology", "fat-tree:4", "--out", str(snap)])
        capsys.readouterr()
        code = main(["profile", str(snap), "--count", "2", "--repeat", "1"])
        out = capsys.readouterr().out
        assert code == 0
        for stage in ("config diff", "lint gate", "generation",
                      "model update", "policy check", "total"):
            assert stage in out
        for counter in ("ddlog records", "ECs affected",
                        "policies rechecked", "lint units reused"):
            assert counter in out

    def test_profile_with_trace_and_metrics_exports(self, tmp_path, capsys):
        import json

        snap = tmp_path / "ft"
        main(["generate", "--topology", "fat-tree:4", "--out", str(snap)])
        trace_file = tmp_path / "out.json"
        metrics_file = tmp_path / "metrics.txt"
        capsys.readouterr()
        code = main(["--trace", str(trace_file),
                     "--metrics", str(metrics_file),
                     "profile", str(snap), "--count", "1", "--repeat", "1"])
        assert code == 0
        payload = json.loads(trace_file.read_text())
        events = payload["traceEvents"]
        roots = [e for e in events if e["name"] == "realconfig.verify"]
        assert roots
        # At least one root verification carries all five stage children.
        from repro.telemetry import names

        root_ids = {r["args"]["span_id"]: set() for r in roots}
        for event in events:
            parent = event["args"].get("parent_id")
            if parent in root_ids:
                root_ids[parent].add(event["name"])
        assert any(
            set(names.STAGE_SPANS) <= children
            for children in root_ids.values()
        )
        exposition = metrics_file.read_text()
        assert "repro_verifications_total" in exposition
        assert "repro_stage_seconds_bucket" in exposition

    def test_profile_bad_snapshot_is_usage_error(self, tmp_path):
        assert main(["profile", str(tmp_path / "missing")]) == 2

    def test_verify_reports_total_time(self, base_dir, tmp_path, capsys):
        changed = tmp_path / "changed"
        import shutil

        shutil.copytree(base_dir, changed)
        edit_config(
            changed, "r1", lambda text: text.replace("cost 1", "cost 40")
        )
        capsys.readouterr()
        main(["verify", str(base_dir), str(changed)])
        assert "total" in capsys.readouterr().out

    def test_trace_summary_flag_prints_tree(self, base_dir, capsys):
        code = main(["--trace-summary", "trace", str(base_dir),
                     "--source", "r0", "--dst", "172.16.2.5"])
        assert code == 0
        err = capsys.readouterr().err
        assert "realconfig.verify" in err
        assert "realconfig.generation" in err
