"""Tests for the command line interface."""

import pytest

from repro.cli import main
from repro.config.io import CONFIG_DIR, load_snapshot, save_snapshot
from repro.net.topologies import line


@pytest.fixture
def base_dir(tmp_path):
    path = tmp_path / "base"
    assert main(["generate", "--topology", "line:3", "--protocol", "ospf",
                 "--out", str(path)]) == 0
    return path


def edit_config(snapshot_dir, hostname, transform):
    cfg = snapshot_dir / CONFIG_DIR / f"{hostname}.cfg"
    cfg.write_text(transform(cfg.read_text()))


class TestGenerate:
    @pytest.mark.parametrize(
        "spec", ["line:3", "ring:4", "grid:2x2", "random:5:2", "fat-tree:2"]
    )
    def test_generate_topologies(self, tmp_path, spec):
        out = tmp_path / "snap"
        assert main(["generate", "--topology", spec, "--out", str(out)]) == 0
        load_snapshot(out)

    def test_generate_bgp(self, tmp_path):
        out = tmp_path / "snap"
        assert main(["generate", "--topology", "ring:4", "--protocol", "bgp",
                     "--out", str(out)]) == 0
        snapshot = load_snapshot(out)
        assert snapshot.device("r0").bgp is not None

    def test_bad_topology_spec(self, tmp_path):
        assert main(["generate", "--topology", "moebius:4",
                     "--out", str(tmp_path / "x")]) == 2
        assert main(["generate", "--topology", "ring:many",
                     "--out", str(tmp_path / "y")]) == 2


class TestShowFib(object):
    def test_prints_entries(self, base_dir, capsys):
        assert main(["show-fib", str(base_dir)]) == 0
        out = capsys.readouterr().out
        assert "172.16.2.0/24" in out

    def test_node_filter(self, base_dir, capsys):
        assert main(["show-fib", str(base_dir), "--node", "r0"]) == 0
        out = capsys.readouterr().out
        assert all(line.startswith("r0:") for line in out.strip().splitlines())


class TestDiffAndVerify:
    def test_diff_empty(self, base_dir, tmp_path, capsys):
        clone = tmp_path / "clone"
        save_snapshot(load_snapshot(base_dir), clone)
        assert main(["diff", str(base_dir), str(clone)]) == 0

    def test_diff_and_verify_shutdown(self, base_dir, tmp_path, capsys):
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace("interface eth1",
                                      "interface eth1\n shutdown"),
        )
        assert main(["diff", str(base_dir), str(changed)]) == 1
        out = capsys.readouterr().out
        assert "shutdown" in out

        # Cutting the line leaves no loop and no blackhole (routes to the
        # lost prefix are withdrawn, so nothing forwards-then-drops): the
        # invariants-only verify passes...
        code = main(["verify", str(base_dir), str(changed)])
        out = capsys.readouterr().out
        assert code == 0
        assert "NEWLY VIOLATED" not in out

    def test_verify_all_pairs(self, base_dir, tmp_path, capsys):
        # ... while --all-pairs reachability catches the partition.
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace("interface eth1",
                                      "interface eth1\n shutdown"),
        )
        code = main(["verify", "--all-pairs", str(base_dir), str(changed)])
        out = capsys.readouterr().out
        assert code == 1
        assert "NEWLY VIOLATED" in out
        assert "reach:" in out

    def test_verify_clean_change(self, base_dir, tmp_path, capsys):
        changed = tmp_path / "changed"
        save_snapshot(load_snapshot(base_dir), changed)
        edit_config(
            changed, "r1",
            lambda text: text.replace(" ip ospf enable",
                                      " ip ospf enable\n ip ospf cost 5", 1),
        )
        assert main(["verify", str(base_dir), str(changed)]) == 0


class TestMine:
    def test_line_is_fragile(self, base_dir, capsys):
        code = main(["mine", str(base_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FRAGILE" in out

    def test_ring_is_fault_tolerant(self, tmp_path, capsys):
        out_dir = tmp_path / "ring"
        main(["generate", "--topology", "ring:4", "--out", str(out_dir)])
        capsys.readouterr()
        code = main(["mine", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "always:" in out
        assert "width >= 1" in out

    def test_no_widths_flag(self, tmp_path, capsys):
        out_dir = tmp_path / "ring"
        main(["generate", "--topology", "ring:4", "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["mine", "--no-widths", str(out_dir)]) == 0
        assert "width" not in capsys.readouterr().out


class TestTrace:
    def test_delivered(self, base_dir, capsys):
        code = main(["trace", str(base_dir), "--source", "r0",
                     "--dst", "172.16.2.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered" in out
        assert "r0" in out and "r2" in out

    def test_unroutable(self, base_dir, capsys):
        code = main(["trace", str(base_dir), "--source", "r0",
                     "--dst", "8.8.8.8"])
        out = capsys.readouterr().out
        assert code == 1
        assert "dropped" in out
