"""Failure injection: invalid changes, non-convergent configurations, and
malformed snapshots must fail loudly *without corrupting* verifier state."""

import pytest

from repro.config.changes import (
    ChangeError,
    SetLocalPref,
    ShutdownInterface,
)
from repro.config.schema import ConfigError
from repro.core.realconfig import RealConfig
from repro.ddlog.convergence import ConvergenceMonitor, NonConvergenceError
from repro.net.topologies import ring
from repro.policy.spec import LoopFree
from repro.workloads import bgp_snapshot


@pytest.fixture
def verifier():
    labeled = ring(4)
    return RealConfig(
        bgp_snapshot(labeled),
        endpoints=["r0", "r1", "r2", "r3"],
        policies=[LoopFree("loop-free")],
    )


class TestInvalidChanges:
    def test_unknown_device_raises_and_preserves_state(self, verifier):
        before_fib = verifier.generator.current_fib_size()
        before_snapshot = verifier.snapshot
        with pytest.raises(ConfigError):
            verifier.apply_change(ShutdownInterface("ghost", "eth0"))
        assert verifier.snapshot is before_snapshot
        assert verifier.generator.current_fib_size() == before_fib
        # The verifier still works afterwards.
        delta = verifier.apply_change(ShutdownInterface("r0", "eth1"))
        assert delta.rule_updates

    def test_invalid_neighbor_raises_cleanly(self, verifier):
        with pytest.raises(ChangeError):
            verifier.apply_change(SetLocalPref("r0", "host0", 150))
        assert all(s.holds for s in verifier.policy_statuses())

    def test_partial_batch_failure_atomic(self, verifier):
        """A batch whose second change is invalid must not half-apply."""
        before = verifier.snapshot
        with pytest.raises(ChangeError):
            verifier.apply_changes(
                [
                    ShutdownInterface("r0", "eth1"),
                    SetLocalPref("r0", "host0", 150),
                ]
            )
        assert verifier.snapshot is before
        assert not verifier.snapshot.device("r0").interface("eth1").shutdown

    def test_invalid_external_snapshot_rejected(self, verifier):
        broken = verifier.snapshot.clone()
        broken.device("r0").interface("eth0").acl_in = "GHOST"
        with pytest.raises(ConfigError):
            verifier.verify_snapshot(broken)
        # State preserved.
        assert verifier.snapshot.device("r0").interface("eth0").acl_in is None


class TestNonConvergence:
    def test_realconfig_surfaces_divergence(self):
        from tests.integration.test_bgp_convergence import bad_gadget_snapshot

        monitor = ConvergenceMonitor(max_iterations=3000, suspect_after=32)
        with pytest.raises(NonConvergenceError):
            RealConfig(bad_gadget_snapshot(), monitor=monitor)

    def test_divergence_introduced_by_change(self):
        """A convergent network made divergent by an LP change: the verify
        call raises instead of hanging."""

        labeled = ring(3)
        snapshot = bgp_snapshot(labeled)
        # Keep only r0's origination (the DISAGREE pattern needs a single
        # origin).
        for name in ("r1", "r2"):
            snapshot.device(name).bgp.networks.clear()
        monitor = ConvergenceMonitor(max_iterations=3000, suspect_after=32)
        verifier = RealConfig(
            snapshot,
            endpoints=["r0", "r1", "r2"],
            monitor=monitor,
        )
        with pytest.raises(NonConvergenceError):
            verifier.apply_changes(
                [
                    SetLocalPref("r1", "eth1", 200),
                    SetLocalPref("r2", "eth0", 200),
                ]
            )
