"""Tests for the incremental data plane generator (stage 1)."""


from repro.config.changes import (
    AddAclEntry,
    BindAcl,
    ShutdownInterface,
    UnbindAcl,
    apply_changes,
)
from repro.config.schema import AclEntry
from repro.core.generator import IncrementalDataPlaneGenerator, extract_filter_rules
from repro.dataplane.rule import FilterRule, ForwardingRule
from repro.net.addr import Prefix


class TestFilterExtraction:
    def test_no_acls_no_rules(self, line3_ospf):
        assert extract_filter_rules(line3_ospf) == set()

    def test_bound_acl_extracted(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf,
            [
                AddAclEntry(
                    "r1", "A",
                    AclEntry(10, "deny", proto=6,
                             dst=Prefix.parse("172.16.2.0/24"),
                             dst_port=(80, 80)),
                ),
                BindAcl("r1", "eth0", "A", "in"),
            ],
        )
        rules = extract_filter_rules(snap)
        assert len(rules) == 1
        rule = next(iter(rules))
        assert rule.node == "r1"
        assert rule.direction == "in"
        assert rule.action == "deny"
        assert rule.match.interval("proto") == (6, 6)
        assert rule.match.interval("dst_port") == (80, 80)

    def test_unbound_acl_not_extracted(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf,
            [AddAclEntry("r1", "A", AclEntry(10, "deny"))],
        )
        assert extract_filter_rules(snap) == set()

    def test_same_acl_both_directions(self, line3_ospf):
        snap, _ = apply_changes(
            line3_ospf,
            [
                AddAclEntry("r1", "A", AclEntry(10, "permit")),
                BindAcl("r1", "eth0", "A", "in"),
                BindAcl("r1", "eth1", "A", "out"),
            ],
        )
        rules = extract_filter_rules(snap)
        assert {(r.interface, r.direction) for r in rules} == {
            ("eth0", "in"),
            ("eth1", "out"),
        }


class TestGenerator:
    def test_initial_load_all_inserts(self, line3_ospf):
        generator = IncrementalDataPlaneGenerator()
        updates = generator.update_to(line3_ospf)
        assert updates
        assert all(u.is_insert() for u in updates)
        assert all(isinstance(u.rule, ForwardingRule) for u in updates)

    def test_incremental_forwarding_updates(self, line3_ospf):
        generator = IncrementalDataPlaneGenerator()
        generator.update_to(line3_ospf)
        snap, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        updates = generator.update_to(snap)
        assert updates
        assert any(not u.is_insert() for u in updates)

    def test_acl_changes_bypass_engine(self, line3_ospf):
        """Filter rule changes come straight from the config diff: the
        engine does no work for a pure ACL change."""
        generator = IncrementalDataPlaneGenerator()
        generator.update_to(line3_ospf)
        snap, _ = apply_changes(
            line3_ospf,
            [
                AddAclEntry("r1", "A", AclEntry(10, "deny", proto=6)),
                BindAcl("r1", "eth0", "A", "in"),
            ],
        )
        updates = generator.update_to(snap)
        assert all(isinstance(u.rule, FilterRule) for u in updates)
        assert generator.last_engine_stats.records == 0

    def test_acl_unbind_emits_deletions(self, line3_ospf):
        generator = IncrementalDataPlaneGenerator()
        snap, _ = apply_changes(
            line3_ospf,
            [
                AddAclEntry("r1", "A", AclEntry(10, "deny", proto=6)),
                BindAcl("r1", "eth0", "A", "in"),
            ],
        )
        generator.update_to(snap)
        snap2, _ = apply_changes(snap, [UnbindAcl("r1", "eth0", "in")])
        updates = generator.update_to(snap2)
        assert len(updates) == 1
        assert not updates[0].is_insert()

    def test_noop_change_no_updates(self, line3_ospf):
        generator = IncrementalDataPlaneGenerator()
        generator.update_to(line3_ospf)
        updates = generator.update_to(line3_ospf.clone())
        assert updates == []

    def test_fib_size_reported(self, line3_ospf):
        generator = IncrementalDataPlaneGenerator()
        generator.update_to(line3_ospf)
        assert generator.current_fib_size() == 15
