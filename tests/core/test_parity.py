"""Parity: after any change sequence, an incrementally maintained RealConfig
must agree — model state and policy verdicts — with a fresh RealConfig built
from scratch on the final snapshot."""

import random

import pytest

from repro.config.changes import (
    AddAclEntry,
    BindAcl,
    EnableInterface,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
)
from repro.config.schema import AclEntry
from repro.core.realconfig import RealConfig
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import ring
from repro.policy.spec import BlackholeFree, LoopFree, Reachability
from repro.workloads import bgp_snapshot, ospf_snapshot


def port_fingerprint(verifier):
    """Semantic fingerprint of the data plane model: per device, the set of
    (EC destination-footprint, port) pairs — independent of EC ids."""
    model = verifier.model
    fingerprint = {}
    for node in model.device_names():
        entries = []
        for ec in model.ecs.ec_ids():
            port = model.port_of(node, ec)
            footprint = tuple(
                sorted(str(p) for p in model.ecs.predicate(ec).dst_prefixes())
            )
            entries.append((footprint, port))
        fingerprint[node] = frozenset(entries)
    return fingerprint


def pair_fingerprint(verifier):
    """Pair reachability by destination footprint instead of EC id."""
    checker = verifier.checker
    model = verifier.model
    out = {}
    for pair, ecs in checker.delivered_pair_map().items():
        footprints = frozenset(
            tuple(sorted(str(p) for p in model.ecs.predicate(ec).dst_prefixes()))
            for ec in ecs
            if model.ecs.exists(ec)
        )
        if footprints:
            out[pair] = footprints
    return out


def policies_for(labeled):
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    edges = sorted(labeled.host_prefixes)
    for i, src in enumerate(edges[:3]):
        dst = edges[(i + 1) % len(edges)]
        policies.append(
            Reachability(
                f"reach-{src}-{dst}",
                src=src,
                dst=dst,
                match=HeaderBox.from_dst_prefix(labeled.host_prefixes[dst][0]),
            )
        )
    return policies


@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
@pytest.mark.parametrize("seed", [0, 1])
def test_model_and_policy_parity(protocol, seed):
    rng = random.Random(seed)
    labeled = ring(5)
    make = ospf_snapshot if protocol == "ospf" else bgp_snapshot
    snapshot = make(labeled)
    verifier = RealConfig(
        snapshot, endpoints=sorted(labeled.host_prefixes), policies=policies_for(labeled)
    )

    interfaces = [
        iface.id
        for iface in labeled.topology.interfaces()
        if labeled.topology.neighbor_of(iface.id) is not None
    ]
    for step in range(6):
        target = rng.choice(interfaces)
        roll = rng.random()
        if roll < 0.4:
            current = verifier.snapshot.device(target.node).interface(target.name)
            change = (
                EnableInterface(target.node, target.name)
                if current.shutdown
                else ShutdownInterface(target.node, target.name)
            )
        elif protocol == "ospf":
            change = SetOspfCost(target.node, target.name, rng.choice([1, 5, 100]))
        else:
            change = SetLocalPref(target.node, target.name, rng.choice([100, 150]))
        verifier.apply_change(change)

        fresh = RealConfig(
            verifier.snapshot,
            endpoints=verifier.checker.endpoints,
            policies=policies_for(labeled),
        )
        assert port_fingerprint(verifier) == port_fingerprint(fresh), (
            f"model divergence after step {step}: {change.describe()}"
        )
        assert pair_fingerprint(verifier) == pair_fingerprint(fresh)
        assert {
            s.policy.name: s.holds for s in verifier.policy_statuses()
        } == {s.policy.name: s.holds for s in fresh.policy_statuses()}


def test_acl_parity():
    labeled = ring(4)
    snapshot = ospf_snapshot(labeled)
    verifier = RealConfig(snapshot, endpoints=sorted(labeled.host_prefixes))
    changes = [
        [
            AddAclEntry(
                "r1", "A",
                AclEntry(10, "deny", proto=6,
                         dst=Prefix.parse("172.16.2.0/24")),
            ),
            AddAclEntry("r1", "A", AclEntry(20, "permit")),
            BindAcl("r1", "eth1", "A", "out"),
        ],
        [ShutdownInterface("r2", "eth1")],
        [BindAcl("r1", "eth0", "A", "in")],
    ]
    for batch in changes:
        verifier.apply_changes(batch)
        fresh = RealConfig(
            verifier.snapshot, endpoints=verifier.checker.endpoints
        )
        assert port_fingerprint(verifier) == port_fingerprint(fresh)
        assert pair_fingerprint(verifier) == pair_fingerprint(fresh)


def test_fattree_parity_single_change(fattree4):
    snapshot = bgp_snapshot(fattree4)
    endpoints = fattree4.edge_nodes()
    verifier = RealConfig(snapshot, endpoints=endpoints)
    verifier.apply_change(ShutdownInterface("agg0_0", "up0"))
    fresh = RealConfig(verifier.snapshot, endpoints=endpoints)
    assert pair_fingerprint(verifier) == pair_fingerprint(fresh)
