"""End-to-end tests of the RealConfig verifier."""

import pytest

from repro.config.changes import (
    AddAclEntry,
    BindAcl,
    EnableInterface,
    SetOspfCost,
    ShutdownInterface,
    UnbindAcl,
)
from repro.config.schema import AclEntry
from repro.core.realconfig import RealConfig
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import line, ring
from repro.policy.spec import BlackholeFree, LoopFree, Reachability, isolation
from repro.workloads import bgp_snapshot, ospf_snapshot


def reach(name, src, dst, prefix_text):
    return Reachability(
        name, src=src, dst=dst,
        match=HeaderBox.from_dst_prefix(Prefix.parse(prefix_text)),
    )


@pytest.fixture
def ring_verifier():
    labeled = ring(4)
    return RealConfig(
        bgp_snapshot(labeled),
        endpoints=["r0", "r1", "r2", "r3"],
        policies=[
            LoopFree("loop-free"),
            reach("r0->r2", "r0", "r2", "172.16.2.0/24"),
        ],
    )


class TestInitialVerification:
    def test_initial_report(self, ring_verifier):
        initial = ring_verifier.initial
        assert initial.ok
        assert initial.rule_updates
        assert initial.timings.total > 0

    def test_policies_hold_initially(self, ring_verifier):
        assert all(s.holds for s in ring_verifier.policy_statuses())

    def test_invalid_snapshot_rejected(self):
        labeled = line(2)
        snapshot = ospf_snapshot(labeled)
        snapshot.device("r0").interfaces["eth1"].acl_in = "GHOST"
        with pytest.raises(Exception):
            RealConfig(snapshot)


class TestChangeVerification:
    def test_single_failure_survives(self, ring_verifier):
        delta = ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        assert delta.ok
        assert delta.rule_updates
        assert "LinkFailure" in delta.description

    def test_double_failure_violates_and_repair_restores(self, ring_verifier):
        ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        delta = ring_verifier.apply_change(ShutdownInterface("r2", "eth1"))
        assert not delta.ok
        assert [s.policy.name for s in delta.newly_violated] == ["r0->r2"]
        repair = ring_verifier.apply_change(EnableInterface("r1", "eth1"))
        assert repair.ok
        assert [s.policy.name for s in repair.newly_satisfied] == ["r0->r2"]

    def test_snapshot_tracks_changes(self, ring_verifier):
        ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        assert ring_verifier.snapshot.device("r1").interface("eth1").shutdown

    def test_line_diff_in_delta(self, ring_verifier):
        delta = ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        assert delta.line_diff is not None
        assert delta.line_diff.size() == 1

    def test_verify_snapshot_external_edit(self, ring_verifier):
        edited = ring_verifier.snapshot.clone()
        edited.device("r1").interface("eth1").shutdown = True
        delta = ring_verifier.verify_snapshot(edited)
        assert delta.ok
        assert delta.line_diff.size() == 1

    def test_no_change_is_cheap_and_empty(self, ring_verifier):
        delta = ring_verifier.verify_snapshot(ring_verifier.snapshot.clone())
        assert delta.ok
        assert not delta.rule_updates
        assert not delta.report.affected_ecs


class TestAclVerification:
    def test_isolation_via_acl(self):
        labeled = line(3)
        verifier = RealConfig(
            ospf_snapshot(labeled),
            endpoints=["r0", "r1", "r2"],
            policies=[
                reach("can-reach", "r0", "r2", "172.16.2.0/24"),
                isolation(
                    "no-http", "r0", "r2",
                    HeaderBox.build(
                        dst_ip=Prefix.parse("172.16.2.0/24").as_interval(),
                        proto=(6, 6),
                        dst_port=(80, 80),
                    ),
                ),
            ],
        )
        # Initially HTTP leaks: the isolation policy is violated.
        assert not verifier.checker.status("no-http").holds
        # Non-HTTP traffic (SSH) must keep flowing after the block.
        verifier.add_policy(
            Reachability(
                "ssh-reach", src="r0", dst="r2",
                match=HeaderBox.build(
                    dst_ip=Prefix.parse("172.16.2.0/24").as_interval(),
                    proto=(6, 6),
                    dst_port=(22, 22),
                ),
            )
        )
        delta = verifier.apply_changes(
            [
                AddAclEntry(
                    "r2", "BLOCK",
                    AclEntry(10, "deny", proto=6,
                             dst=Prefix.parse("172.16.2.0/24"),
                             dst_port=(80, 80)),
                ),
                AddAclEntry("r2", "BLOCK", AclEntry(20, "permit")),
                BindAcl("r2", "eth0", "BLOCK", "in"),
            ]
        )
        assert [s.policy.name for s in delta.newly_satisfied] == ["no-http"]
        assert verifier.checker.status("ssh-reach").holds
        # The broad any-traffic policy now legitimately fails: its match
        # includes the HTTP slice the ACL blocks.
        assert not verifier.checker.status("can-reach").holds

    def test_overbroad_acl_breaks_reachability(self):
        labeled = line(3)
        verifier = RealConfig(
            ospf_snapshot(labeled),
            endpoints=["r0", "r1", "r2"],
            policies=[reach("can-reach", "r0", "r2", "172.16.2.0/24")],
        )
        delta = verifier.apply_changes(
            [
                AddAclEntry("r2", "BLOCK", AclEntry(10, "deny")),
                BindAcl("r2", "eth0", "BLOCK", "in"),
            ]
        )
        assert [s.policy.name for s in delta.newly_violated] == ["can-reach"]
        repair = verifier.apply_change(UnbindAcl("r2", "eth0", "in"))
        assert [s.policy.name for s in repair.newly_satisfied] == ["can-reach"]


class TestOspfVerifier:
    def test_lc_change_keeps_reachability(self):
        labeled = ring(4)
        verifier = RealConfig(
            ospf_snapshot(labeled),
            endpoints=["r0", "r2"],
            policies=[
                reach("r0->r2", "r0", "r2", "172.16.2.0/24"),
                BlackholeFree("no-blackhole"),
            ],
        )
        delta = verifier.apply_change(SetOspfCost("r0", "eth1", 100))
        assert delta.ok

    def test_update_order_configurable(self):
        labeled = ring(4)
        verifier = RealConfig(
            ospf_snapshot(labeled), update_order="deletion-first"
        )
        delta = verifier.apply_change(SetOspfCost("r0", "eth1", 100))
        assert delta.batch.order == "deletion-first"

    def test_model_mode_configurable(self):
        labeled = ring(4)
        verifier = RealConfig(ospf_snapshot(labeled), model_mode="priority")
        assert verifier.model.mode == "priority"


class TestPolicyManagement:
    def test_add_policy_later(self, ring_verifier):
        status = ring_verifier.add_policy(
            reach("late", "r3", "r1", "172.16.1.0/24")
        )
        assert status.holds
        ring_verifier.remove_policy("late")

    def test_violated_policies_listing(self, ring_verifier):
        ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        ring_verifier.apply_change(ShutdownInterface("r2", "eth1"))
        assert [s.policy.name for s in ring_verifier.violated_policies()] == [
            "r0->r2"
        ]

    def test_summary_text(self, ring_verifier):
        delta = ring_verifier.apply_change(ShutdownInterface("r1", "eth1"))
        text = delta.summary()
        assert "change:" in text and "data plane:" in text and "time:" in text
