"""Tests for result/report value types."""

from repro.config.diff import LineDiff
from repro.core.results import StageTimings, VerificationDelta
from repro.dataplane.batch import BatchResult
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.policy.checker import CheckReport
from repro.policy.spec import PolicyStatus, Reachability


def make_delta(violated=(), satisfied=()):
    report = CheckReport(
        newly_violated=[
            PolicyStatus(Reachability(name, src="a", dst="b"), False)
            for name in violated
        ],
        newly_satisfied=[
            PolicyStatus(Reachability(name, src="a", dst="b"), True)
            for name in satisfied
        ],
        total_pairs=10,
    )
    updates = [
        RuleUpdate(1, ForwardingRule("r0", Prefix.parse("10.0.0.0/8"), "eth0")),
        RuleUpdate(-1, ForwardingRule("r0", Prefix.parse("11.0.0.0/8"), "eth0")),
    ]
    return VerificationDelta(
        description="test change",
        line_diff=LineDiff(),
        rule_updates=updates,
        batch=BatchResult(order="insertion-first"),
        report=report,
        timings=StageTimings(0.001, 0.002, 0.003, 0.004),
    )


class TestStageTimings:
    def test_total(self):
        timings = StageTimings(1.0, 2.0, 3.0, 4.0)
        assert timings.total == 10.0

    def test_str_mentions_stages(self):
        text = str(StageTimings(0.001, 0.002, 0.003, 0.004))
        for word in ("diff", "generate", "model", "check"):
            assert word in text

    def test_defaults_zero(self):
        assert StageTimings().total == 0.0


class TestVerificationDelta:
    def test_ok_semantics(self):
        assert make_delta().ok
        assert not make_delta(violated=["p"]).ok
        assert make_delta(satisfied=["p"]).ok

    def test_summary_counts_rules(self):
        text = make_delta().summary()
        assert "+1/-1 rules" in text
        assert "test change" in text

    def test_newly_lists(self):
        delta = make_delta(violated=["v1"], satisfied=["s1", "s2"])
        assert [s.policy.name for s in delta.newly_violated] == ["v1"]
        assert [s.policy.name for s in delta.newly_satisfied] == ["s1", "s2"]

    def test_summary_without_optional_parts(self):
        delta = make_delta()
        delta.line_diff = None
        delta.batch = None
        text = delta.summary()
        assert "config:" not in text
        assert "model:" not in text


class TestCheckReport:
    def test_elapsed_is_sum(self):
        report = CheckReport(analysis_seconds=0.25, policy_seconds=0.75)
        assert report.elapsed_seconds == 1.0

    def test_summary_shape(self):
        report = CheckReport(total_pairs=12)
        text = report.summary()
        assert "/12 pairs affected" in text
