"""Integration: the pipeline emits the documented span/metric taxonomy."""

import pytest

from repro.config.changes import ShutdownInterface
from repro.core.realconfig import RealConfig
from repro.policy.spec import BlackholeFree, LoopFree
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    names,
    set_metrics,
    set_tracer,
)


@pytest.fixture
def telemetry():
    tracer = Tracer()
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    yield tracer, registry
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)




def test_change_verification_has_root_span_with_all_stage_children(
    telemetry, fattree4_ospf
):
    tracer, _ = telemetry
    verifier = RealConfig(
        fattree4_ospf,
        policies=[LoopFree("lf"), BlackholeFree("bf")],
        lint_mode="warn",
    )
    tracer.reset()
    verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    (root,) = [s for s in tracer.roots() if s.name == names.SPAN_VERIFY]
    child_names = [c.name for c in tracer.children_of(root)]
    assert child_names == list(names.STAGE_SPANS)
    assert root.attributes["kind"] == "change"
    assert root.attributes["rule_updates"] > 0


def test_stage_children_carry_work_attributes(telemetry, fattree4_ospf):
    tracer, _ = telemetry
    verifier = RealConfig(fattree4_ospf, lint_mode="warn")
    tracer.reset()
    verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    (epoch,) = tracer.find(names.SPAN_DDLOG_EPOCH)
    assert epoch.attributes["records"] > 0
    (model,) = tracer.find(names.SPAN_MODEL_UPDATE)
    assert model.attributes["ec_moves"] > 0
    assert model.attributes["ports_touched"] > 0
    (check,) = tracer.find(names.SPAN_POLICY_CHECK)
    assert check.attributes["ecs_analyzed"] > 0
    (lint,) = tracer.find(names.SPAN_LINT_INCREMENTAL)
    assert lint.attributes["units_reused"] > lint.attributes["units_run"]


def test_initial_verification_traced_too(telemetry, fattree4_ospf):
    tracer, _ = telemetry
    RealConfig(fattree4_ospf)
    (root,) = [s for s in tracer.roots() if s.name == names.SPAN_VERIFY]
    assert root.attributes["kind"] == "initial"
    child_names = {c.name for c in tracer.children_of(root)}
    assert names.SPAN_GENERATION in child_names
    assert names.SPAN_MODEL_UPDATE in child_names
    assert names.SPAN_POLICY_CHECK in child_names


def test_metrics_counters_accumulate_across_verifications(telemetry, fattree4_ospf):
    _, registry = telemetry
    verifier = RealConfig(fattree4_ospf, lint_mode="warn")
    after_init = registry.value(names.DDLOG_RECORDS)
    assert after_init > 0
    verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert registry.value(names.VERIFICATIONS) == 2
    assert registry.value(names.DDLOG_RECORDS) > after_init
    assert registry.value(names.MODEL_EC_MOVES) > 0
    assert registry.value(names.POLICY_ECS_ANALYZED) > 0
    assert registry.value(names.LINT_UNITS_REUSED) > 0
    histogram = registry.histogram(names.STAGE_SECONDS, stage="total")
    assert histogram.count == 2


def test_untraced_run_records_nothing_and_still_verifies(fattree4_ospf):
    # No tracer/metrics installed: the global defaults are no-ops.
    verifier = RealConfig(fattree4_ospf)
    delta = verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert delta.ok
    probe = Tracer()
    previous = set_tracer(probe)
    try:
        assert probe.finished == []
    finally:
        set_tracer(previous)


def test_lint_stage_is_timed(fattree4_ospf):
    snapshot = fattree4_ospf
    gated = RealConfig(snapshot, lint_mode="warn")
    assert gated.initial.timings.lint > 0.0
    delta = gated.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert delta.timings.lint > 0.0
    assert delta.timings.total >= delta.timings.lint
    assert "lint" in str(delta.timings)

    ungated = RealConfig(snapshot, lint_mode="off")
    assert ungated.initial.timings.lint == 0.0
    off_delta = ungated.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert off_delta.timings.lint == 0.0
    assert "lint" not in str(off_delta.timings)


def test_timings_str_reports_total(fattree4_ospf):
    verifier = RealConfig(fattree4_ospf)
    delta = verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert "total" in str(delta.timings)
    assert "total" in delta.summary()


def test_delta_carries_engine_stats(fattree4_ospf):
    verifier = RealConfig(fattree4_ospf)
    assert verifier.initial.engine is not None
    delta = verifier.apply_change(ShutdownInterface("agg0_0", "down0"))
    assert delta.engine is not None
    assert delta.engine.epoch == verifier.initial.engine.epoch + 1
