"""Batch-mode tests: the paper's update-order asymmetry (Table 3)."""

import pytest

from repro.dataplane.batch import BatchUpdater, OrderError, order_updates
from repro.dataplane.model import NetworkModel
from repro.dataplane.ports import DROP_PORT, forward_port
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.topologies import line


def rule(node, prefix_text, iface):
    return ForwardingRule(node, Prefix.parse(prefix_text), iface)


def move_batch(prefix_count=6):
    """A 'reroute' batch: every prefix moves from eth0 to eth1."""
    inserts, deletes = [], []
    for i in range(prefix_count):
        p = f"10.{i}.0.0/16"
        deletes.append(RuleUpdate(-1, rule("r1", p, "eth0")))
        inserts.append(RuleUpdate(1, rule("r1", p, "eth1")))
    return inserts, deletes


def model_with_initial(prefix_count=6, mode="ecmp", merge=True):
    model = NetworkModel(line(3).topology, mode=mode, merge_on_unregister=merge)
    for i in range(prefix_count):
        model.insert_forwarding(rule("r1", f"10.{i}.0.0/16", "eth0"))
    return model


class TestOrdering:
    def test_insertion_first_order(self):
        inserts, deletes = move_batch(2)
        ordered = order_updates(deletes + inserts, "insertion-first")
        assert [u.is_insert() for u in ordered] == [True, True, False, False]

    def test_deletion_first_order(self):
        inserts, deletes = move_batch(2)
        ordered = order_updates(inserts + deletes, "deletion-first")
        assert [u.is_insert() for u in ordered] == [False, False, True, True]

    def test_grouped_order_pairs_by_prefix(self):
        inserts, deletes = move_batch(2)
        ordered = order_updates(deletes + inserts, "grouped")
        # insert then delete for prefix 0, then insert/delete for prefix 1.
        kinds = [(str(u.rule.prefix), u.is_insert()) for u in ordered]
        assert kinds == [
            ("10.0.0.0/16", True),
            ("10.0.0.0/16", False),
            ("10.1.0.0/16", True),
            ("10.1.0.0/16", False),
        ]

    def test_unknown_order_rejected(self):
        with pytest.raises(OrderError):
            order_updates([], "chaotic")
        with pytest.raises(OrderError):
            BatchUpdater(NetworkModel(line(2).topology), "chaotic")


class TestOrderEffectPriorityMode:
    """The paper's Table 3 asymmetry under APKeep's strict-priority
    semantics: insertion-first moves each EC once (new rule overwrites),
    deletion-first moves it twice (through the drop port)."""

    def test_insertion_first_single_moves(self):
        model = model_with_initial(mode="priority")
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "insertion-first").apply(inserts + deletes)
        assert result.num_moves == 6  # one move per prefix EC

    def test_deletion_first_double_moves(self):
        model = model_with_initial(mode="priority")
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "deletion-first").apply(inserts + deletes)
        assert result.num_moves == 12  # via the drop port
        drops = [m for m in result.moves if m.new_port == DROP_PORT]
        assert len(drops) == 6

    def test_grouped_matches_insertion_first(self):
        model = model_with_initial(mode="priority")
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "grouped").apply(inserts + deletes)
        assert result.num_moves == 6


class TestOrderEffectEcmpMode:
    """Under multipath-union semantics both simple orders transit an
    intermediate port (extra-path vs drop); only grouped (per-prefix
    atomic) ordering achieves the minimal one move per EC."""

    def test_insertion_first_transient_union(self):
        model = model_with_initial()
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "insertion-first").apply(inserts + deletes)
        assert result.num_moves == 12
        unions = [
            m for m in result.moves
            if m.new_port == forward_port(["eth0", "eth1"])
        ]
        assert len(unions) == 6

    def test_deletion_first_transient_drop(self):
        model = model_with_initial()
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "deletion-first").apply(inserts + deletes)
        assert result.num_moves == 12
        drops = [m for m in result.moves if m.new_port == DROP_PORT]
        assert len(drops) == 6

    def test_grouped_is_minimal(self):
        model = model_with_initial()
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "grouped").apply(inserts + deletes)
        assert result.num_moves == 6

    @pytest.mark.parametrize(
        "mode", ["ecmp", "priority"]
    )
    @pytest.mark.parametrize(
        "order", ["insertion-first", "deletion-first", "grouped"]
    )
    def test_final_state_order_independent(self, order, mode):
        # merge=False keeps EC ids stable through the delete+reinsert churn
        # of deletion-first ordering, so net moves track one id.
        model = model_with_initial(mode=mode, merge=False)
        inserts, deletes = move_batch()
        result = BatchUpdater(model, order).apply(inserts + deletes)
        for key, (old, new) in result.net_moves(model).items():
            assert old == forward_port(["eth0"])
            assert new == forward_port(["eth1"])
        # Every EC ends on eth1.
        for i in range(6):
            from repro.net.headerspace import header
            from repro.net.addr import parse_ipv4

            ec = model.ecs.classify(header(parse_ipv4(f"10.{i}.0.1")))
            assert model.port_of("r1", ec) == forward_port(["eth1"])

    def test_net_moves_collapse_transients(self):
        model = model_with_initial(merge=False)
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "deletion-first").apply(inserts + deletes)
        net = result.net_moves(model)
        # 12 transitions collapse to 6 net old->new changes.
        assert len(net) == 6
        assert all(
            old == forward_port(["eth0"]) and new == forward_port(["eth1"])
            for old, new in net.values()
        )


class TestBatchResult:
    def test_counts(self):
        model = model_with_initial(2)
        inserts, deletes = move_batch(2)
        result = BatchUpdater(model, "insertion-first").apply(inserts + deletes)
        assert result.num_inserts == 2
        assert result.num_deletes == 2
        assert result.elapsed_seconds >= 0

    def test_summary_mentions_order(self):
        model = model_with_initial(1)
        inserts, deletes = move_batch(1)
        result = BatchUpdater(model, "grouped").apply(inserts + deletes)
        assert "[grouped]" in result.summary()

    def test_affected_ec_ids_unique(self):
        model = model_with_initial()
        inserts, deletes = move_batch()
        result = BatchUpdater(model, "deletion-first").apply(inserts + deletes)
        affected = result.affected_ec_ids(model)
        assert len(affected) == len(set(affected)) == 6

    def test_empty_batch(self):
        model = model_with_initial(1)
        result = BatchUpdater(model).apply([])
        assert result.num_moves == 0
        assert not result.net_moves(model)
