"""Tests for the EC manager: splitting, merging, atomicity invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.ec import ECManager, EcError, EcMerge, EcSplit
from repro.net.headerspace import HeaderBox, header


def box(lo, hi):
    return HeaderBox.build(dst_ip=(lo, hi))


class TestRegister:
    def test_initial_single_ec(self):
        manager = ECManager()
        assert manager.num_ecs() == 1
        assert manager.ec_ids() == [0]

    def test_register_splits(self):
        manager = ECManager()
        members = manager.register(box(0, 99))
        assert manager.num_ecs() == 2
        assert len(members) == 1
        manager.check_invariants()

    def test_register_full_space_no_split(self):
        manager = ECManager()
        members = manager.register(HeaderBox.everything())
        assert manager.num_ecs() == 1
        assert members == {0}

    def test_nested_boxes(self):
        manager = ECManager()
        manager.register(box(0, 99))
        manager.register(box(10, 19))
        assert manager.num_ecs() == 3
        manager.check_invariants()

    def test_overlapping_boxes(self):
        manager = ECManager()
        manager.register(box(0, 50))
        manager.register(box(30, 80))
        # [0,29], [30,50], [51,80], rest
        assert manager.num_ecs() == 4
        manager.check_invariants()

    def test_identical_box_reuses(self):
        manager = ECManager()
        first = manager.register(box(0, 99))
        second = manager.register(box(0, 99))
        assert first == second
        assert manager.num_ecs() == 2

    def test_classify(self):
        manager = ECManager()
        manager.register(box(0, 99))
        inside = manager.classify(header(50))
        outside = manager.classify(header(100))
        assert inside != outside

    def test_ecs_in_requires_registered(self):
        manager = ECManager()
        with pytest.raises(EcError):
            manager.ecs_in(box(0, 1))

    def test_contains_index(self):
        manager = ECManager()
        outer = box(0, 99)
        inner = box(10, 19)
        manager.register(outer)
        manager.register(inner)
        (inner_ec,) = manager.ecs_in(inner)
        assert manager.contains(inner_ec, outer)
        assert manager.contains(inner_ec, inner)


class TestUnregister:
    def test_refcount(self):
        manager = ECManager()
        manager.register(box(0, 99))
        manager.register(box(0, 99))
        manager.unregister(box(0, 99))
        # Still one reference left: the box remains queryable.
        assert manager.ecs_in(box(0, 99))
        manager.unregister(box(0, 99))
        with pytest.raises(EcError):
            manager.ecs_in(box(0, 99))

    def test_unregister_unknown_rejected(self):
        with pytest.raises(EcError):
            ECManager().unregister(box(0, 1))

    def test_merge_restores_minimality(self):
        manager = ECManager()
        manager.register(box(0, 99))
        assert manager.num_ecs() == 2
        manager.unregister(box(0, 99))
        assert manager.num_ecs() == 1
        manager.check_invariants()

    def test_merge_only_when_signatures_match(self):
        manager = ECManager()
        manager.register(box(0, 99))
        manager.register(box(10, 19))
        manager.unregister(box(0, 99))
        # [10,19] still registered: its EC cannot merge with the rest.
        assert manager.num_ecs() == 2
        manager.check_invariants()

    def test_merge_disabled(self):
        manager = ECManager(merge_on_unregister=False)
        manager.register(box(0, 99))
        manager.unregister(box(0, 99))
        assert manager.num_ecs() == 2

    def test_volume_preserved_through_merge(self):
        manager = ECManager()
        total = sum(manager.predicate(ec).volume() for ec in manager.ec_ids())
        manager.register(box(0, 99))
        manager.register(box(50, 150))
        manager.unregister(box(0, 99))
        manager.unregister(box(50, 150))
        assert (
            sum(manager.predicate(ec).volume() for ec in manager.ec_ids())
            == total
        )


class TestListeners:
    def test_split_events(self):
        manager = ECManager()
        events = []
        manager.add_listener(events.append)
        manager.register(box(0, 99))
        assert any(isinstance(e, EcSplit) for e in events)

    def test_merge_events(self):
        manager = ECManager()
        events = []
        manager.add_listener(events.append)
        manager.register(box(0, 99))
        manager.unregister(box(0, 99))
        merges = [e for e in events if isinstance(e, EcMerge)]
        assert len(merges) == 1
        assert manager.exists(merges[0].winner)
        assert not manager.exists(merges[0].loser)


multi_field_boxes = st.builds(
    lambda d, p: HeaderBox.build(dst_ip=d, proto=p),
    st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
        lambda t: (min(t), max(t))
    ),
    st.tuples(st.integers(0, 5), st.integers(0, 5)).map(lambda t: (min(t), max(t))),
)


class TestInvariantsProperty:
    @given(st.lists(multi_field_boxes, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_random_register_sequences(self, boxes):
        manager = ECManager()
        for b in boxes:
            manager.register(b)
        manager.check_invariants()

    @given(
        st.lists(multi_field_boxes, min_size=1, max_size=5),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_register_unregister_sequences(self, boxes, data):
        manager = ECManager()
        registered = []
        for b in boxes:
            manager.register(b)
            registered.append(b)
        # Unregister a random subset (in random order).
        order = data.draw(st.permutations(range(len(registered))))
        keep = data.draw(st.integers(0, len(registered)))
        for index in order[keep:]:
            manager.unregister(registered[index])
        manager.check_invariants()

    @given(st.lists(multi_field_boxes, min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_full_unregister_returns_to_single_ec(self, boxes):
        manager = ECManager()
        for b in boxes:
            manager.register(b)
        for b in boxes:
            manager.unregister(b)
        assert manager.num_ecs() == 1
