"""ACL (filter rule) semantics in the data plane model."""

import pytest

from repro.dataplane.model import ModelError, NetworkModel
from repro.dataplane.rule import FilterRule, ForwardingRule
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import HeaderBox, header
from repro.net.topologies import line


@pytest.fixture
def model():
    return NetworkModel(line(3).topology)


def deny_http(node="r1", iface="eth0", direction="in", seq=10):
    return FilterRule(
        node,
        iface,
        direction,
        seq,
        "deny",
        HeaderBox.build(proto=(6, 6), dst_port=(80, 80)),
    )


def permit_all(node="r1", iface="eth0", direction="in", seq=100):
    return FilterRule(node, iface, direction, seq, "permit", HeaderBox.everything())


HTTP = header(parse_ipv4("172.16.0.1"), 0, 6, 80)
SSH = header(parse_ipv4("172.16.0.1"), 0, 6, 22)


class TestFilterDecision:
    def test_unbound_permits(self, model):
        ec = model.ecs.classify(HTTP)
        assert model.filter_permits("r1", "eth0", "in", ec)

    def test_deny_entry(self, model):
        model.insert_filter(deny_http())
        model.insert_filter(permit_all())
        assert not model.filter_permits(
            "r1", "eth0", "in", model.ecs.classify(HTTP)
        )
        assert model.filter_permits("r1", "eth0", "in", model.ecs.classify(SSH))

    def test_implicit_deny(self, model):
        model.insert_filter(deny_http())
        # No trailing permit: everything is denied.
        assert not model.filter_permits(
            "r1", "eth0", "in", model.ecs.classify(SSH)
        )

    def test_first_match_by_seq(self, model):
        model.insert_filter(
            FilterRule("r1", "eth0", "in", 20, "deny", HeaderBox.everything())
        )
        model.insert_filter(
            FilterRule(
                "r1", "eth0", "in", 10, "permit",
                HeaderBox.build(proto=(6, 6)),
            )
        )
        assert model.filter_permits("r1", "eth0", "in", model.ecs.classify(HTTP))
        udp = header(parse_ipv4("1.2.3.4"), 0, 17, 53)
        assert not model.filter_permits("r1", "eth0", "in", model.ecs.classify(udp))

    def test_directions_independent(self, model):
        model.insert_filter(deny_http(direction="in"))
        ec = model.ecs.classify(HTTP)
        assert model.filter_permits("r1", "eth0", "out", ec)

    def test_delete_restores(self, model):
        model.insert_filter(deny_http())
        model.delete_filter(deny_http())
        ec = model.ecs.classify(HTTP)
        assert model.filter_permits("r1", "eth0", "in", ec)
        assert model.ecs.num_ecs() == 1

    def test_delete_unknown_rejected(self, model):
        with pytest.raises(ModelError):
            model.delete_filter(deny_http())

    def test_duplicate_seq_rejected(self, model):
        model.insert_filter(deny_http())
        with pytest.raises(ModelError):
            model.insert_filter(deny_http())


class TestFilterChanges:
    def test_insert_reports_changed_ecs(self, model):
        _, changes = model.insert_filter(deny_http())
        assert changes
        assert all(change.old_permitted and not change.new_permitted
                   for change in changes)

    def test_shadowed_insert_reports_nothing(self, model):
        model.insert_filter(
            FilterRule("r1", "eth0", "in", 5, "deny", HeaderBox.everything())
        )
        _, changes = model.insert_filter(deny_http(seq=10))
        assert not changes

    def test_delete_reports_reverted_ecs(self, model):
        model.insert_filter(deny_http())
        model.insert_filter(permit_all())
        _, changes = model.delete_filter(deny_http())
        assert changes
        assert all(not change.old_permitted and change.new_permitted
                   for change in changes)


class TestPathInteraction:
    def test_egress_filter_blocks_hop(self, model):
        model.insert_forwarding(
            ForwardingRule("r0", Prefix.parse("172.16.0.0/16"), "eth1")
        )
        ec = model.ecs.classify(HTTP)
        assert model.next_devices("r0", ec)
        model.insert_filter(deny_http(node="r0", iface="eth1", direction="out"))
        ec = model.ecs.classify(HTTP)
        assert not model.next_devices("r0", ec)

    def test_ingress_filter_blocks_hop(self, model):
        model.insert_forwarding(
            ForwardingRule("r0", Prefix.parse("172.16.0.0/16"), "eth1")
        )
        model.insert_filter(deny_http(node="r1", iface="eth0", direction="in"))
        model.insert_filter(permit_all(node="r1", iface="eth0", direction="in"))
        ec = model.ecs.classify(HTTP)
        assert not model.next_devices("r0", ec)
        # Non-HTTP traffic still flows (the trailing permit).
        ec_ssh = model.ecs.classify(SSH)
        assert model.next_devices("r0", ec_ssh) == [("eth1", "r1", "eth0")]

    def test_unlinked_interface_no_hop(self, model):
        model.insert_forwarding(
            ForwardingRule("r0", Prefix.parse("172.16.0.0/16"), "host0")
        )
        ec = model.ecs.classify(HTTP)
        assert not model.next_devices("r0", ec)
