"""Tests for the network data plane model: LPM, ECMP, update algorithm."""

import pytest

from repro.dataplane.model import ModelError, NetworkModel
from repro.dataplane.ports import ACCEPT_PORT, DROP_PORT, forward_port
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import header
from repro.net.topologies import line
from repro.routing.types import ACCEPT


@pytest.fixture
def model():
    return NetworkModel(line(3).topology)


def rule(node, prefix_text, iface):
    return ForwardingRule(node, Prefix.parse(prefix_text), iface)


def port_for(model, node, addr_text):
    ec = model.ecs.classify(header(parse_ipv4(addr_text)))
    return model.port_of(node, ec)


class TestLpm:
    def test_no_rules_drop(self, model):
        assert port_for(model, "r0", "10.0.0.1") == DROP_PORT

    def test_single_rule(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        assert port_for(model, "r0", "10.1.2.3") == forward_port(["eth1"])
        assert port_for(model, "r0", "11.0.0.0") == DROP_PORT

    def test_longest_prefix_wins(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        model.insert_forwarding(rule("r0", "10.1.0.0/16", "host0"))
        assert port_for(model, "r0", "10.1.2.3") == forward_port(["host0"])
        assert port_for(model, "r0", "10.2.0.0") == forward_port(["eth1"])

    def test_equal_prefix_is_ecmp(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "host0"))
        assert port_for(model, "r0", "10.1.2.3") == forward_port(["eth1", "host0"])

    def test_accept_rule(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", ACCEPT))
        assert port_for(model, "r0", "10.1.2.3") == ACCEPT_PORT

    def test_per_device_isolation(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        assert port_for(model, "r1", "10.1.2.3") == DROP_PORT


class TestUpdates:
    def test_insert_returns_moves(self, model):
        moves = model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        assert len(moves) == 1
        assert moves[0].old_port == DROP_PORT
        assert moves[0].new_port == forward_port(["eth1"])

    def test_covered_insert_no_move(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        # A less-specific rule with the same action elsewhere does not move
        # the covered EC.
        moves = model.insert_forwarding(rule("r0", "10.0.0.0/16", "eth1"))
        covered = [m for m in moves if m.old_port == m.new_port]
        assert not covered  # moves only reported when the port changed

    def test_delete_restores(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        moves = model.delete_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        assert moves[0].new_port == DROP_PORT
        assert model.ecs.num_ecs() == 1  # merged back

    def test_delete_falls_back_to_shorter_prefix(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        model.insert_forwarding(rule("r0", "10.1.0.0/16", "host0"))
        model.delete_forwarding(rule("r0", "10.1.0.0/16", "host0"))
        assert port_for(model, "r0", "10.1.2.3") == forward_port(["eth1"])

    def test_duplicate_insert_rejected(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        with pytest.raises(ModelError):
            model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))

    def test_duplicate_insert_does_not_leak_registration(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        before = model.ecs.num_ecs()
        with pytest.raises(ModelError):
            model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        model.delete_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        assert model.ecs.num_ecs() == 1

    def test_delete_missing_rejected(self, model):
        with pytest.raises(ModelError):
            model.delete_forwarding(rule("r0", "10.0.0.0/8", "eth1"))

    def test_apply_update_dispatch(self, model):
        model.apply_update(RuleUpdate(1, rule("r0", "10.0.0.0/8", "eth1")))
        assert model.num_rules() == 1
        model.apply_update(RuleUpdate(-1, rule("r0", "10.0.0.0/8", "eth1")))
        assert model.num_rules() == 0

    def test_unknown_device_rejected(self, model):
        with pytest.raises(ModelError):
            model.insert_forwarding(rule("ghost", "10.0.0.0/8", "eth1"))

    def test_ecmp_member_removal_changes_port(self, model):
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "eth1"))
        model.insert_forwarding(rule("r0", "10.0.0.0/8", "host0"))
        moves = model.delete_forwarding(rule("r0", "10.0.0.0/8", "host0"))
        assert moves[0].old_port == forward_port(["eth1", "host0"])
        assert moves[0].new_port == forward_port(["eth1"])


class TestBruteForceConsistency:
    """The EC-based model must agree with direct per-header rule lookup."""

    def brute_force(self, rules, addr):
        best_len, ifaces = -1, set()
        for r in rules:
            if r.prefix.contains_address(addr):
                if r.prefix.length > best_len:
                    best_len, ifaces = r.prefix.length, {r.out_interface}
                elif r.prefix.length == best_len:
                    ifaces.add(r.out_interface)
        return forward_port(ifaces) if best_len >= 0 else DROP_PORT

    def test_random_rule_set(self, model):
        import random

        rng = random.Random(11)
        rules = []
        for _ in range(25):
            length = rng.choice([8, 12, 16, 20, 24])
            net = rng.randrange(0, 1 << 32) & (((1 << length) - 1) << (32 - length))
            candidate = ForwardingRule(
                "r0", Prefix(net, length), rng.choice(["eth1", "host0", ACCEPT])
            )
            try:
                model.insert_forwarding(candidate)
                rules.append(candidate)
            except ModelError:
                pass  # duplicate (prefix, iface)
        model.ecs.check_invariants()
        probe_addrs = [rng.randrange(0, 1 << 32) for _ in range(200)]
        probe_addrs += [r.prefix.network for r in rules]
        for addr in probe_addrs:
            ec = model.ecs.classify(header(addr))
            assert model.port_of("r0", ec) == self.brute_force(rules, addr), (
                f"divergence at {addr}"
            )

    def test_random_insert_delete_interleaving(self, model):
        import random

        rng = random.Random(5)
        live = []
        for step in range(60):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                model.delete_forwarding(victim)
            else:
                length = rng.choice([8, 16, 24])
                net = rng.randrange(0, 1 << 32) & (
                    ((1 << length) - 1) << (32 - length)
                )
                candidate = ForwardingRule(
                    "r1", Prefix(net, length), rng.choice(["eth0", "eth1"])
                )
                if any(
                    r.prefix == candidate.prefix
                    and r.out_interface == candidate.out_interface
                    for r in live
                ):
                    continue
                model.insert_forwarding(candidate)
                live.append(candidate)
        for addr in [rng.randrange(0, 1 << 32) for _ in range(100)]:
            ec = model.ecs.classify(header(addr))
            assert model.port_of("r1", ec) == self.brute_force(live, addr)
