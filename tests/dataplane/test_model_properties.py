"""Property-based consistency of the data plane model in both forwarding
semantics, against per-header brute force."""


from hypothesis import given, settings, strategies as st

from repro.dataplane.model import NetworkModel
from repro.dataplane.ports import DROP_PORT, forward_port
from repro.dataplane.rule import ForwardingRule
from repro.net.addr import Prefix
from repro.net.headerspace import header
from repro.net.topologies import line
from repro.routing.types import ACCEPT

IFACES = ["eth0", "eth1", "host0", ACCEPT]


def brute_force(rules, addr, mode):
    """Reference LPM lookup straight over the rule list."""
    best_len = -1
    winners = []  # (seq, iface) at best_len
    for seq, rule in enumerate(rules):
        if rule.prefix.contains_address(addr):
            if rule.prefix.length > best_len:
                best_len = rule.prefix.length
                winners = [(seq, rule.out_interface)]
            elif rule.prefix.length == best_len:
                winners.append((seq, rule.out_interface))
    if best_len < 0:
        return DROP_PORT
    if mode == "priority":
        return forward_port([max(winners)[1]])
    return forward_port([iface for _, iface in winners])


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 3),  # which /8 bucket
        st.sampled_from([8, 12, 16, 24]),
        st.sampled_from(IFACES),
    ),
    min_size=1,
    max_size=40,
)


@given(operations, st.sampled_from(["ecmp", "priority"]))
@settings(max_examples=40, deadline=None)
def test_model_matches_brute_force(ops, mode):
    model = NetworkModel(line(2).topology, mode=mode)
    live = []
    for action, bucket, length, iface in ops:
        network = (10 + bucket) << 24
        rule = ForwardingRule(
            "r0", Prefix.from_address_int(network, length), iface
        )
        if action == "insert":
            if any(
                r.prefix == rule.prefix and r.out_interface == iface
                for r in live
            ):
                continue
            model.insert_forwarding(rule)
            live.append(rule)
        else:
            match = [
                r
                for r in live
                if r.prefix == rule.prefix and r.out_interface == iface
            ]
            if not match:
                continue
            model.delete_forwarding(match[0])
            live.remove(match[0])
    model.ecs.check_invariants()
    probe_addresses = [
        (10 + bucket) << 24 for bucket in range(4)
    ] + [((10 + bucket) << 24) + (1 << 20) for bucket in range(4)] + [0]
    for addr in probe_addresses:
        ec = model.ecs.classify(header(addr))
        expected = brute_force(live, addr, mode)
        # In priority mode the reference's "newest wins" matches the
        # model's insertion sequence only when derived the same way; the
        # model assigns sequence numbers in call order, as `live` does.
        assert model.port_of("r0", ec) == expected, (addr, mode)


@given(operations)
@settings(max_examples=25, deadline=None)
def test_full_teardown_restores_single_ec(ops):
    model = NetworkModel(line(2).topology)
    live = []
    for action, bucket, length, iface in ops:
        network = (10 + bucket) << 24
        rule = ForwardingRule(
            "r0", Prefix.from_address_int(network, length), iface
        )
        if action == "insert" and not any(
            r.prefix == rule.prefix and r.out_interface == iface for r in live
        ):
            model.insert_forwarding(rule)
            live.append(rule)
    for rule in live:
        model.delete_forwarding(rule)
    assert model.ecs.num_ecs() == 1
    assert model.num_rules() == 0
