"""Tests for logical ports and the per-device port map."""

from repro.dataplane.ports import (
    ACCEPT_PORT,
    DROP_PORT,
    PortMap,
    forward_port,
    is_accept,
    is_drop,
    port_interfaces,
)
from repro.routing.types import ACCEPT


class TestPortConstruction:
    def test_forward_port_sorts_and_dedups(self):
        assert forward_port(["b", "a", "a"]) == ("fwd", ("a", "b"))

    def test_empty_is_drop(self):
        assert forward_port([]) == DROP_PORT
        assert is_drop(forward_port([]))

    def test_accept_interface_dominates(self):
        assert forward_port([ACCEPT, "eth0"]) == ACCEPT_PORT
        assert is_accept(forward_port([ACCEPT]))

    def test_port_interfaces(self):
        assert port_interfaces(forward_port(["a", "b"])) == ("a", "b")
        assert port_interfaces(DROP_PORT) == ()
        assert port_interfaces(ACCEPT_PORT) == ()


class TestPortMap:
    def test_default_is_drop(self):
        assert PortMap().get(7) == DROP_PORT

    def test_move_returns_old(self):
        pm = PortMap()
        old = pm.move(1, forward_port(["a"]))
        assert old == DROP_PORT
        assert pm.get(1) == forward_port(["a"])

    def test_move_same_port_noop(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        assert pm.move(1, forward_port(["a"])) == forward_port(["a"])

    def test_move_to_drop_removes(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        pm.move(1, DROP_PORT)
        assert pm.get(1) == DROP_PORT
        assert not pm.ecs_of

    def test_ecs_of_buckets(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        pm.move(2, forward_port(["a"]))
        assert pm.ecs_of[forward_port(["a"])] == {1, 2}
        pm.move(1, forward_port(["b"]))
        assert pm.ecs_of[forward_port(["a"])] == {2}

    def test_copy_membership(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        pm.copy_membership(1, 9)
        assert pm.get(9) == forward_port(["a"])

    def test_copy_membership_of_drop_parent(self):
        pm = PortMap()
        pm.copy_membership(1, 9)
        assert pm.get(9) == DROP_PORT

    def test_drop_ec(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        pm.drop_ec(1)
        assert pm.get(1) == DROP_PORT
        assert not pm.ecs_of

    def test_ports_listing(self):
        pm = PortMap()
        pm.move(1, forward_port(["a"]))
        pm.move(2, ACCEPT_PORT)
        assert pm.ports() == {forward_port(["a"]), ACCEPT_PORT}
