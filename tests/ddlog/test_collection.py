"""Tests for weighted deltas and iteration-indexed histories."""

from hypothesis import given, strategies as st

from repro.ddlog.collection import Delta, History


class TestDelta:
    def test_add_and_weight(self):
        delta = Delta()
        delta.add("a", 2)
        delta.add("a", -1)
        assert delta.weight("a") == 1

    def test_zero_weights_elided(self):
        delta = Delta([("a", 1), ("a", -1)])
        assert delta.is_empty()
        assert "a" not in delta
        assert len(delta) == 0

    def test_add_zero_is_noop(self):
        delta = Delta()
        delta.add("a", 0)
        assert delta.is_empty()

    def test_merge(self):
        left = Delta([("a", 1), ("b", -1)])
        right = Delta([("b", 1), ("c", 2)])
        left.merge(right)
        assert left.weight("a") == 1
        assert "b" not in left
        assert left.weight("c") == 2

    def test_negated(self):
        delta = Delta([("a", 3)])
        assert delta.negated().weight("a") == -3

    def test_copy_is_independent(self):
        delta = Delta([("a", 1)])
        copy = delta.copy()
        copy.add("a", 1)
        assert delta.weight("a") == 1

    def test_signature_order_independent(self):
        a = Delta([("x", 1), ("y", 2)])
        b = Delta([("y", 2), ("x", 1)])
        assert a.signature() == b.signature()

    def test_signature_differs_on_weight(self):
        assert Delta([("x", 1)]).signature() != Delta([("x", 2)]).signature()

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-3, 3))))
    def test_weights_sum(self, items):
        delta = Delta(items)
        for key in {k for k, _ in items}:
            expected = sum(w for k, w in items if k == key)
            assert delta.weight(key) == expected


class TestHistory:
    def test_cumulative(self):
        history = History()
        history.add("a", 0, 1)
        history.add("a", 3, -1)
        assert history.cumulative("a", 0) == 1
        assert history.cumulative("a", 2) == 1
        assert history.cumulative("a", 3) == 0
        assert history.final_weight("a") == 0

    def test_zero_diffs_removed(self):
        history = History()
        history.add("a", 1, 1)
        history.add("a", 1, -1)
        assert list(history.records()) == []
        assert history.record_count() == 0

    def test_final_collection(self):
        history = History()
        history.add("a", 0, 1)
        history.add("b", 2, 1)
        history.add("b", 4, -1)
        final = history.final_collection()
        assert final.weight("a") == 1
        assert "b" not in final

    def test_as_of(self):
        history = History()
        history.add("a", 0, 1)
        history.add("b", 2, 1)
        snapshot = history.as_of(1)
        assert snapshot.weight("a") == 1
        assert "b" not in snapshot

    def test_times(self):
        history = History()
        history.add("a", 0, 1)
        history.add("b", 5, 1)
        assert sorted(history.times()) == [0, 5]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 4), st.integers(-2, 2))
        )
    )
    def test_cumulative_matches_naive(self, entries):
        history = History()
        for record, iteration, weight in entries:
            history.add(record, iteration, weight)
        for record in {r for r, _, _ in entries}:
            for upto in range(5):
                expected = sum(
                    w for r, i, w in entries if r == record and i <= upto
                )
                assert history.cumulative(record, upto) == expected
