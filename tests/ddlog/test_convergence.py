"""Tests for the convergence monitor and recurring-state detection."""

import pytest

from repro.ddlog.convergence import (
    ConvergenceMonitor,
    NonConvergenceError,
    RecurringStateError,
)
from repro.ddlog.dsl import Program


class TestMonitorUnit:
    def test_cap_enforced(self):
        monitor = ConvergenceMonitor(max_iterations=10)
        with pytest.raises(NonConvergenceError):
            monitor.observe(11, None)

    def test_under_cap_ok(self):
        monitor = ConvergenceMonitor(max_iterations=10)
        monitor.observe(10, None)

    def test_recurring_state_detected(self):
        monitor = ConvergenceMonitor(max_iterations=1000, suspect_after=5)
        monitor.observe(6, 12345)
        with pytest.raises(RecurringStateError) as info:
            monitor.observe(8, 12345)
        assert info.value.first_seen == 6
        assert info.value.iteration == 8

    def test_not_suspicious_early(self):
        monitor = ConvergenceMonitor(suspect_after=100)
        monitor.observe(5, 777)
        monitor.observe(6, 777)  # repeats are fine before suspect_after

    def test_none_signature_never_recurs(self):
        monitor = ConvergenceMonitor(suspect_after=0)
        monitor.observe(1, None)
        monitor.observe(2, None)

    def test_reset_forgets(self):
        monitor = ConvergenceMonitor(suspect_after=0)
        monitor.observe(1, 42)
        monitor.reset()
        monitor.observe(2, 42)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(max_iterations=0)


class TestEngineIntegration:
    def test_cap_stops_runaway(self):
        # grow(n) :- grow(m), n = m + 1 — diverges by construction.
        prog = Program("runaway")
        start = prog.input("start", ("n",))
        grow = prog.relation("grow", ("n",))
        prog.rule(grow, [start("n")], head_terms=("n",))
        prog.rule(
            grow,
            [grow("m")],
            head_terms=("n",),
            lets=[("n", lambda env: env["m"] + 1)],
        )
        prog.probe(grow)
        monitor = ConvergenceMonitor(max_iterations=50)
        cp = prog.compile(monitor=monitor)
        cp.insert(start, (0,))
        with pytest.raises(NonConvergenceError):
            cp.commit()

    def test_convergent_program_not_flagged(self):
        prog = Program("ok")
        edge = prog.input("edge", ("src", "dst"))
        path = prog.relation("path", ("src", "dst"))
        prog.rule(path, [edge("x", "y")], head_terms=("x", "y"))
        prog.rule(path, [edge("x", "y"), path("y", "z")], head_terms=("x", "z"))
        prog.probe(path)
        monitor = ConvergenceMonitor(max_iterations=1000, suspect_after=2)
        cp = prog.compile(monitor=monitor)
        for i in range(10):
            cp.insert(edge, (i, i + 1))
        cp.commit()  # must not raise
