"""Tests for the Datalog-flavoured DSL."""

import pytest

from repro.ddlog.dsl import DslError, Program, const


def tc_program():
    prog = Program("tc")
    edge = prog.input("edge", ("src", "dst"))
    path = prog.relation("path", ("src", "dst"))
    prog.rule(path, [edge("x", "y")], head_terms=("x", "y"))
    prog.rule(path, [edge("x", "y"), path("y", "z")], head_terms=("x", "z"))
    prog.probe(path)
    return prog, edge, path


def positive(collection):
    return {record for record, weight in collection.items() if weight > 0}


class TestDeclarations:
    def test_duplicate_relation_rejected(self):
        prog = Program()
        prog.input("r", ("a",))
        with pytest.raises(DslError):
            prog.relation("r", ("a",))

    def test_arity_checked_in_atoms(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        with pytest.raises(DslError):
            edge("x")

    def test_rules_only_on_derived(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        with pytest.raises(DslError):
            prog.rule(edge, [edge("x", "y")], head_terms=("x", "y"))

    def test_head_arity_checked(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        p = prog.relation("p", ("src", "dst"))
        with pytest.raises(DslError):
            prog.rule(p, [edge("x", "y")], head_terms=("x",))

    def test_unbound_head_variable_rejected(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        p = prog.relation("p", ("src", "dst"))
        with pytest.raises(DslError):
            prog.rule(p, [edge("x", "y")], head_terms=("x", "zzz"))

    def test_empty_body_rejected(self):
        prog = Program()
        p = prog.relation("p", ("a",))
        with pytest.raises(DslError):
            prog.rule(p, [], head_terms=("x",))

    def test_derived_without_rules_rejected_at_compile(self):
        prog = Program()
        prog.relation("lonely", ("a",))
        with pytest.raises(DslError):
            prog.compile()


class TestEvaluation:
    def test_transitive_closure(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        for e in [("a", "b"), ("b", "c")]:
            cp.insert(edge, e)
        cp.commit()
        assert positive(cp.collection(path)) == {
            ("a", "b"),
            ("b", "c"),
            ("a", "c"),
        }

    def test_incremental_insert(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        cp.insert(edge, ("a", "b"))
        cp.commit()
        cp.insert(edge, ("b", "c"))
        cp.commit()
        assert ("a", "c") in positive(cp.collection(path))

    def test_incremental_delete(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        for e in [("a", "b"), ("b", "c"), ("a", "c")]:
            cp.insert(edge, e)
        cp.commit()
        cp.remove(edge, ("b", "c"))
        cp.commit()
        got = positive(cp.collection(path))
        assert got == {("a", "b"), ("a", "c")}

    def test_take_delta(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        cp.insert(edge, ("a", "b"))
        cp.commit()
        cp.take_delta(path)
        cp.insert(edge, ("b", "c"))
        cp.commit()
        delta = cp.take_delta(path)
        assert delta.weight(("b", "c")) == 1
        assert delta.weight(("a", "c")) == 1
        assert ("a", "b") not in delta

    def test_constants_in_atoms(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        from_a = prog.relation("from_a", ("dst",))
        prog.rule(from_a, [edge(const("a"), "y")], head_terms=("y",))
        prog.probe(from_a)
        cp = prog.compile()
        cp.insert(edge, ("a", "b"))
        cp.insert(edge, ("c", "d"))
        cp.commit()
        assert positive(cp.collection(from_a)) == {("b",)}

    def test_non_string_constants_automatic(self):
        prog = Program()
        num = prog.input("num", ("value",))
        ones = prog.relation("ones", ("value",))
        prog.rule(ones, [num(1)], head_terms=(1,))
        prog.probe(ones)
        cp = prog.compile()
        cp.insert(num, (1,))
        cp.insert(num, (2,))
        cp.commit()
        assert positive(cp.collection(ones)) == {(1,)}

    def test_repeated_variable_in_atom(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        selfloop = prog.relation("selfloop", ("node",))
        prog.rule(selfloop, [edge("x", "x")], head_terms=("x",))
        prog.probe(selfloop)
        cp = prog.compile()
        cp.insert(edge, ("a", "a"))
        cp.insert(edge, ("a", "b"))
        cp.commit()
        assert positive(cp.collection(selfloop)) == {("a",)}

    def test_where_filter(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        nonself = prog.relation("nonself", ("src", "dst"))
        prog.rule(
            nonself,
            [edge("x", "y")],
            head_terms=("x", "y"),
            where=lambda env: env["x"] != env["y"],
        )
        prog.probe(nonself)
        cp = prog.compile()
        cp.insert(edge, ("a", "a"))
        cp.insert(edge, ("a", "b"))
        cp.commit()
        assert positive(cp.collection(nonself)) == {("a", "b")}

    def test_lets_compute_values(self):
        prog = Program()
        pair = prog.input("pair", ("a", "b"))
        total = prog.relation("total", ("a", "b", "sum"))
        prog.rule(
            total,
            [pair("a", "b")],
            head_terms=("a", "b", "s"),
            lets=[("s", lambda env: env["a"] + env["b"])],
        )
        prog.probe(total)
        cp = prog.compile()
        cp.insert(pair, (2, 3))
        cp.commit()
        assert positive(cp.collection(total)) == {(2, 3, 5)}

    def test_lets_chain(self):
        prog = Program()
        num = prog.input("num", ("n",))
        out = prog.relation("out", ("n", "m"))
        prog.rule(
            out,
            [num("n")],
            head_terms=("n", "m"),
            lets=[
                ("d", lambda env: env["n"] * 2),
                ("m", lambda env: env["d"] + 1),
            ],
        )
        prog.probe(out)
        cp = prog.compile()
        cp.insert(num, (5,))
        cp.commit()
        assert positive(cp.collection(out)) == {(5, 11)}

    def test_cartesian_join(self):
        prog = Program()
        a = prog.input("a", ("x",))
        b = prog.input("b", ("y",))
        prod = prog.relation("prod", ("x", "y"))
        prog.rule(prod, [a("x"), b("y")], head_terms=("x", "y"))
        prog.probe(prod)
        cp = prog.compile()
        cp.insert(a, (1,))
        cp.insert(a, (2,))
        cp.insert(b, ("u",))
        cp.commit()
        assert positive(cp.collection(prod)) == {(1, "u"), (2, "u")}

    def test_set_semantics_multiple_derivations(self):
        """A fact derived two ways has weight exactly one."""
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        reach = prog.relation("reach", ("dst",))
        prog.rule(reach, [edge(const("a"), "y")], head_terms=("y",))
        prog.rule(reach, [edge(const("b"), "y")], head_terms=("y",))
        prog.probe(reach)
        cp = prog.compile()
        cp.insert(edge, ("a", "t"))
        cp.insert(edge, ("b", "t"))
        cp.commit()
        assert cp.collection(reach).weight(("t",)) == 1
        # Removing one derivation keeps the fact.
        cp.remove(edge, ("a", "t"))
        cp.commit()
        assert cp.collection(reach).weight(("t",)) == 1
        cp.remove(edge, ("b", "t"))
        cp.commit()
        assert ("t",) not in cp.collection(reach)


class TestAggregates:
    def build(self):
        prog = Program()
        item = prog.input("item", ("group", "value"))

        def min_agg(group, counts):
            yield (group, min(r[1] for r in counts))

        low = prog.aggregate(
            "low", ("group", "value"), item, key=lambda r: r[0], agg=min_agg
        )
        prog.probe(low)
        return prog, item, low

    def test_min(self):
        prog, item, low = self.build()
        cp = prog.compile()
        cp.insert(item, ("g", 5))
        cp.insert(item, ("g", 3))
        cp.commit()
        assert positive(cp.collection(low)) == {("g", 3)}

    def test_min_updates_on_delete(self):
        prog, item, low = self.build()
        cp = prog.compile()
        cp.insert(item, ("g", 5))
        cp.insert(item, ("g", 3))
        cp.commit()
        cp.remove(item, ("g", 3))
        cp.commit()
        assert positive(cp.collection(low)) == {("g", 5)}

    def test_group_disappears(self):
        prog, item, low = self.build()
        cp = prog.compile()
        cp.insert(item, ("g", 5))
        cp.commit()
        cp.remove(item, ("g", 5))
        cp.commit()
        assert positive(cp.collection(low)) == set()


class TestRuntimeErrors:
    def test_insert_on_derived_rejected(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        with pytest.raises(DslError):
            cp.insert(path, ("a", "b"))

    def test_unprobed_collection_rejected(self):
        prog = Program()
        edge = prog.input("edge", ("src", "dst"))
        p = prog.relation("p", ("src", "dst"))
        prog.rule(p, [edge("x", "y")], head_terms=("x", "y"))
        cp = prog.compile()
        with pytest.raises(DslError):
            cp.collection(p)

    def test_relation_lookup_by_name(self):
        prog, edge, path = tc_program()
        cp = prog.compile()
        cp.insert("edge", ("a", "b"))
        cp.commit()
        assert positive(cp.collection("path")) == {("a", "b")}
