"""Tests for the dataflow engine: graph validation and scheduling."""

import pytest

from repro.ddlog.collection import Delta
from repro.ddlog.engine import Engine, GraphError
from repro.ddlog.operators import Concat, Distinct, Input, Map, Probe


def build_chain():
    engine = Engine()
    source = engine.add(Input("in"))
    double = engine.add(Map("double", lambda r: r * 2))
    probe = engine.add(Probe("out"))
    engine.connect(source, double)
    engine.connect(double, probe)
    return engine, source, probe


class TestGraphConstruction:
    def test_simple_chain(self):
        engine, source, probe = build_chain()
        engine.insert(source, 21)
        engine.run_epoch()
        assert probe.collection().weight(42) == 1

    def test_unregistered_operator_rejected(self):
        engine = Engine()
        a = engine.add(Input("a"))
        stray = Map("stray", lambda r: r)
        with pytest.raises(GraphError):
            engine.connect(a, stray)

    def test_bad_port_rejected(self):
        engine = Engine()
        a = engine.add(Input("a"))
        b = engine.add(Map("b", lambda r: r))
        with pytest.raises(GraphError):
            engine.connect(a, b, port=1)

    def test_cycle_without_feedback_rejected(self):
        engine = Engine()
        a = engine.add(Map("a", lambda r: r))
        b = engine.add(Map("b", lambda r: r))
        engine.connect(a, b)
        engine.connect(b, a)
        with pytest.raises(GraphError):
            engine.finalize()

    def test_cycle_with_feedback_allowed(self):
        engine = Engine()
        a = engine.add(Distinct("a"))
        b = engine.add(Map("b", lambda r: r))
        engine.connect(a, b)
        engine.connect(b, a, bump=True)
        engine.finalize()

    def test_no_mutation_after_finalize(self):
        engine, _, _ = build_chain()
        engine.finalize()
        with pytest.raises(GraphError):
            engine.add(Input("late"))

    def test_insert_requires_input_operator(self):
        engine = Engine()
        mapper = engine.add(Map("m", lambda r: r))
        with pytest.raises(GraphError):
            engine.insert(mapper, 1)


class TestEpochs:
    def test_multiple_epochs_accumulate(self):
        engine, source, probe = build_chain()
        engine.insert(source, 1)
        engine.run_epoch()
        engine.insert(source, 2)
        engine.run_epoch()
        assert probe.collection().weight(2) == 1
        assert probe.collection().weight(4) == 1

    def test_retraction_epoch(self):
        engine, source, probe = build_chain()
        engine.insert(source, 1)
        engine.run_epoch()
        engine.remove(source, 1)
        engine.run_epoch()
        assert probe.collection().is_empty()

    def test_cancelling_buffered_inputs_is_noop_epoch(self):
        engine, source, probe = build_chain()
        engine.insert(source, 1)
        engine.remove(source, 1)
        stats = engine.run_epoch()
        assert stats.records == 0
        assert probe.collection().is_empty()

    def test_apply_delta(self):
        engine, source, probe = build_chain()
        engine.apply(source, Delta([(1, 1), (2, 1)]))
        engine.run_epoch()
        assert len(probe.collection()) == 2

    def test_stats_populated(self):
        engine, source, _ = build_chain()
        engine.insert(source, 1)
        stats = engine.run_epoch()
        assert stats.epoch == 1
        assert stats.messages > 0
        assert stats.elapsed_seconds >= 0
        assert "epoch 1" in str(stats)

    def test_empty_epoch(self):
        engine, _, probe = build_chain()
        stats = engine.run_epoch()
        assert stats.messages == 0


class TestMultiInput:
    def test_concat_merges_sources(self):
        engine = Engine()
        a = engine.add(Input("a"))
        b = engine.add(Input("b"))
        union = engine.add(Concat("u", 2))
        probe = engine.add(Probe("p"))
        engine.connect(a, union, port=0)
        engine.connect(b, union, port=1)
        engine.connect(union, probe)
        engine.insert(a, "x")
        engine.insert(b, "x")
        engine.run_epoch()
        assert probe.collection().weight("x") == 2

    def test_probe_collections_by_name(self):
        engine, source, probe = build_chain()
        engine.insert(source, 1)
        engine.run_epoch()
        assert engine.probe_collections()["out"].weight(2) == 1

    def test_state_size_counts_stored_diffs(self):
        engine, source, _ = build_chain()
        engine.insert(source, 1)
        engine.run_epoch()
        assert engine.state_size() >= 2  # input history + probe history
