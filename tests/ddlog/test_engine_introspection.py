"""Engine introspection and statistics."""


from repro.ddlog.dsl import Program


def tc():
    prog = Program("tc")
    edge = prog.input("edge", ("src", "dst"))
    path = prog.relation("path", ("src", "dst"))
    prog.rule(path, [edge("x", "y")], head_terms=("x", "y"))
    prog.rule(path, [edge("x", "y"), path("y", "z")], head_terms=("x", "z"))
    prog.probe(path)
    return prog, edge, path


class TestEpochStats:
    def test_fields_accumulate(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        for i in range(4):
            cp.insert(edge, (i, i + 1))
        stats = cp.commit()
        assert stats.epoch == 1
        assert stats.iterations >= 3
        assert stats.records > 0
        assert stats.recompute_calls > 0

    def test_incremental_epoch_cheaper(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        for i in range(15):
            cp.insert(edge, (i, i + 1))
        full = cp.commit()
        cp.insert(edge, (100, 101))
        inc = cp.commit()
        assert inc.records < full.records / 4

    def test_last_stats_exposed(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        cp.insert(edge, (0, 1))
        stats = cp.commit()
        assert cp.engine.last_stats is stats


class TestEngineQueries:
    def test_join_lookups_counted(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        for i in range(5):
            cp.insert(edge, (i, i + 1))
        cp.commit()
        assert cp.engine.join_lookups() > 0

    def test_state_size_grows_with_data(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        cp.insert(edge, (0, 1))
        cp.commit()
        small = cp.engine.state_size()
        for i in range(1, 10):
            cp.insert(edge, (i, i + 1))
        cp.commit()
        assert cp.engine.state_size() > small

    def test_state_size_shrinks_on_retraction(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        for i in range(10):
            cp.insert(edge, (i, i + 1))
        cp.commit()
        loaded = cp.engine.state_size()
        for i in range(10):
            cp.remove(edge, (i, i + 1))
        cp.commit()
        assert cp.engine.state_size() < loaded

    def test_probe_collections_named(self):
        prog, edge, _ = tc()
        cp = prog.compile()
        cp.insert(edge, (0, 1))
        cp.commit()
        collections = cp.engine.probe_collections()
        assert set(collections) == {"path.probe"}
