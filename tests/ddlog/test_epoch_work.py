"""Regression guard: incremental epochs do work proportional to the change.

The paper's core claim is that re-verification after a small change is
cheap because the differential engine only propagates corrections.  If a
refactor accidentally falls back to full recomputation, the one-link
change's work counters jump to the initial-convergence scale — these
tests pin the gap.
"""

from repro.config.changes import ShutdownInterface, apply_changes
from repro.routing.program import ControlPlane


def test_one_link_shutdown_does_strictly_less_work_than_convergence(
    fattree4_ospf,
):
    control_plane = ControlPlane()
    control_plane.update_to(fattree4_ospf)
    initial = control_plane.last_stats
    assert initial is not None
    assert initial.records > 0
    assert initial.messages > 0
    assert initial.recompute_calls > 0

    changed, _ = apply_changes(
        fattree4_ospf, [ShutdownInterface("agg0_0", "down0")]
    )
    control_plane.update_to(changed)
    incremental = control_plane.last_stats
    assert incremental is not None
    assert incremental.epoch == initial.epoch + 1

    # Strictly smaller on the volume axes — an accidental full recompute
    # would make these equal or larger.  Not merely smaller, either: the
    # incremental epoch should be a small fraction of convergence on a
    # k=4 fat-tree (~8% measured; the /2 bound leaves headroom for engine
    # changes without masking a full recompute).
    assert incremental.records < initial.records / 2
    assert incremental.recompute_calls < initial.recompute_calls / 2

    # ``messages`` counts per-edge emission events, bounded by graph edges
    # x iterations rather than record volume (retract-and-rederive takes a
    # couple more iterations, so raw events may exceed convergence).  The
    # volume carried per message must still collapse.
    assert incremental.messages <= initial.messages * 2
    assert (incremental.records / incremental.messages) < (
        initial.records / initial.messages
    ) / 2


def test_no_op_change_epoch_does_no_record_work(fattree4_ospf):
    control_plane = ControlPlane()
    control_plane.update_to(fattree4_ospf)
    control_plane.update_to(fattree4_ospf.clone())
    stats = control_plane.last_stats
    assert stats is not None
    assert stats.records == 0
    assert stats.messages == 0
    assert stats.recompute_calls == 0
