"""Property-based equivalence: incremental evaluation must always match
from-scratch evaluation, for recursive programs with aggregation, under
arbitrary insert/delete sequences.

This is the load-bearing correctness property of the whole reproduction —
the differential engine's answer after N epochs must equal a fresh
evaluation of the final input (including disconnections, which defeat naive
incremental Datalog via count-to-infinity).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ddlog.dsl import Program


def shortest_path_program():
    prog = Program("sp")
    edge = prog.input("edge", ("src", "dst", "cost"))
    cand = prog.relation("cand", ("src", "dst", "cost"))
    prog.rule(cand, [edge("x", "y", "c")], head_terms=("x", "y", "c"))

    def min_agg(group, counts):
        yield (group[0], group[1], min(r[2] for r in counts))

    dist = prog.aggregate(
        "dist", ("src", "dst", "cost"), cand,
        key=lambda r: (r[0], r[1]), agg=min_agg,
    )
    prog.rule(
        cand,
        [edge("x", "y", "c1"), dist("y", "z", "c2")],
        head_terms=("x", "z", "c"),
        lets=[("c", lambda env: env["c1"] + env["c2"])],
        where=lambda env: env["x"] != env["z"],
    )
    prog.probe(dist)
    return prog, edge, dist


def reference_distances(edges):
    """Floyd-Warshall over the edge set (self-distances excluded, matching
    the Datalog program, except direct self-edges)."""
    nodes = sorted({u for u, _, _ in edges} | {v for _, v, _ in edges})
    INF = float("inf")
    dist = {(u, v): INF for u in nodes for v in nodes}
    for u, v, c in edges:
        dist[(u, v)] = min(dist[(u, v)], c)
    for k in nodes:
        for i in nodes:
            for j in nodes:
                via = dist[(i, k)] + dist[(k, j)]
                if via < dist[(i, j)]:
                    dist[(i, j)] = via
    return {
        (u, v): c
        for (u, v), c in dist.items()
        if c < INF and not (u == v and (u, v, c) not in set(edges) and c > 0)
    }


def engine_distances(cp, dist):
    return {
        (r[0], r[1]): r[2]
        for r, w in cp.collection(dist).items()
        if w > 0
    }


nodes = st.integers(0, 5)
edges_strategy = st.sets(
    st.tuples(nodes, nodes, st.integers(1, 10)).filter(lambda e: e[0] != e[1]),
    max_size=12,
)


class TestShortestPathEquivalence:
    def _from_scratch(self, edge_set):
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        for e in edge_set:
            cp.insert(edge, e)
        cp.commit()
        return engine_distances(cp, dist)

    @given(edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_single_epoch_matches_floyd_warshall(self, edge_set):
        got = self._from_scratch(edge_set)
        expected = reference_distances(edge_set)
        # The Datalog program never derives dist(u, u); drop self pairs.
        expected = {k: v for k, v in expected.items() if k[0] != k[1]}
        got = {k: v for k, v in got.items() if k[0] != k[1]}
        assert got == expected

    @given(edges_strategy, edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_two_epochs_match_from_scratch(self, first, second):
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        for e in first:
            cp.insert(edge, e)
        cp.commit()
        for e in first - second:
            cp.remove(edge, e)
        for e in second - first:
            cp.insert(edge, e)
        cp.commit()
        assert engine_distances(cp, dist) == self._from_scratch(second)

    @given(st.lists(edges_strategy, min_size=3, max_size=5))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_epoch_sequence_matches_from_scratch(self, snapshots):
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        current = set()
        for snapshot in snapshots:
            for e in current - snapshot:
                cp.remove(edge, e)
            for e in snapshot - current:
                cp.insert(edge, e)
            cp.commit()
            current = snapshot
            assert engine_distances(cp, dist) == self._from_scratch(current)

    def test_disconnection_terminates(self):
        """The classic count-to-infinity scenario must terminate with the
        disconnected distances retracted."""
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        ring_edges = []
        for i in range(4):
            ring_edges.append((i, (i + 1) % 4, 1))
            ring_edges.append(((i + 1) % 4, i, 1))
        for e in ring_edges:
            cp.insert(edge, e)
        cp.commit()
        # Cut node 3 off entirely.
        for e in ring_edges:
            if 3 in (e[0], e[1]):
                cp.remove(edge, e)
        stats = cp.commit()
        got = engine_distances(cp, dist)
        assert all(3 not in pair for pair in got)
        assert stats.iterations < 100

    def test_cost_increase_reroutes(self):
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        for e in [("a", "b", 1), ("b", "c", 1), ("a", "c", 5)]:
            cp.insert(edge, e)
        cp.commit()
        assert engine_distances(cp, dist)[("a", "c")] == 2
        cp.remove(edge, ("b", "c", 1))
        cp.insert(edge, ("b", "c", 100))
        cp.commit()
        assert engine_distances(cp, dist)[("a", "c")] == 5


class TestIncrementalityIsCheap:
    def test_small_change_touches_little(self):
        """A no-impact edge change must not reprocess the whole graph."""
        prog, edge, dist = shortest_path_program()
        cp = prog.compile()
        chain = [(i, i + 1, 1) for i in range(20)]
        for e in chain:
            cp.insert(edge, e)
        full = cp.commit()
        # Add a heavy parallel edge that changes nothing.
        cp.insert(edge, (0, 1, 50))
        inc = cp.commit()
        assert inc.records < full.records / 5
