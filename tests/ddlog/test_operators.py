"""Unit tests for individual dataflow operators."""

from repro.ddlog.collection import Delta
from repro.ddlog.operators import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    Input,
    Join,
    Map,
    Probe,
    Reduce,
)


def emit(op, port, iteration, items):
    return op.on_delta(port, iteration, Delta(items))


class TestStateless:
    def test_map(self):
        op = Map("m", lambda r: r * 2)
        out = emit(op, 0, 0, [(3, 1), (4, -2)])
        assert out[0].weight(6) == 1
        assert out[0].weight(8) == -2

    def test_map_empty_emits_nothing(self):
        op = Map("m", lambda r: r)
        assert op.on_delta(0, 0, Delta()) == {}

    def test_flatmap(self):
        op = FlatMap("f", lambda r: [r, r + 10])
        out = emit(op, 0, 2, [(1, 1)])
        assert out[2].weight(1) == 1
        assert out[2].weight(11) == 1

    def test_flatmap_can_drop(self):
        op = FlatMap("f", lambda r: [])
        assert emit(op, 0, 0, [(1, 1)]) == {}

    def test_filter(self):
        op = Filter("f", lambda r: r % 2 == 0)
        out = emit(op, 0, 0, [(1, 1), (2, 1)])
        assert 1 not in out[0]
        assert out[0].weight(2) == 1

    def test_concat_passthrough(self):
        op = Concat("c", 3)
        out = emit(op, 2, 1, [("x", -1)])
        assert out[1].weight("x") == -1

    def test_input_accumulates(self):
        op = Input("i")
        emit(op, 0, 0, [("a", 1)])
        emit(op, 0, 0, [("a", 1)])
        assert op.history.final_weight("a") == 2
        assert op.state_size() == 1


class TestJoin:
    def make(self):
        return Join(
            "j",
            left_key=lambda r: r[0],
            right_key=lambda r: r[0],
            merge=lambda l, rr: (l[0], l[1], rr[1]),
        )

    def test_matching_pairs(self):
        op = self.make()
        assert emit(op, 0, 0, [(("k", "l1"), 1)]) == {}
        out = emit(op, 1, 0, [(("k", "r1"), 1)])
        assert out[0].weight(("k", "l1", "r1")) == 1

    def test_weights_multiply(self):
        op = self.make()
        emit(op, 0, 0, [(("k", "l"), 2)])
        out = emit(op, 1, 0, [(("k", "r"), 3)])
        assert out[0].weight(("k", "l", "r")) == 6

    def test_retraction_propagates(self):
        op = self.make()
        emit(op, 0, 0, [(("k", "l"), 1)])
        emit(op, 1, 0, [(("k", "r"), 1)])
        out = emit(op, 0, 1, [(("k", "l"), -1)])
        assert out[1].weight(("k", "l", "r")) == -1

    def test_iteration_is_max_of_sides(self):
        op = self.make()
        emit(op, 0, 5, [(("k", "l"), 1)])
        out = emit(op, 1, 2, [(("k", "r"), 1)])
        assert list(out) == [5]

    def test_no_cross_key_matches(self):
        op = self.make()
        emit(op, 0, 0, [(("k1", "l"), 1)])
        assert emit(op, 1, 0, [(("k2", "r"), 1)]) == {}

    def test_index_cleanup(self):
        op = self.make()
        emit(op, 0, 0, [(("k", "l"), 1)])
        emit(op, 0, 0, [(("k", "l"), -1)])
        assert op.state_size() == 0


class CaptureScheduler:
    """Collects Reduce recompute requests like the engine would."""

    def __init__(self, op):
        self.requests = []
        op.schedule_recompute = self.schedule

    def schedule(self, op, iteration, group):
        self.requests.append((iteration, group))


def min_agg(group, counts):
    yield (group, min(r[1] for r in counts))


class TestReduce:
    def make(self):
        op = Reduce("r", key=lambda r: r[0], agg=min_agg)
        return op, CaptureScheduler(op)

    def test_delta_schedules_recompute(self):
        op, sched = self.make()
        emit(op, 0, 0, [(("g", 5), 1)])
        assert (0, "g") in sched.requests

    def test_recompute_emits_output(self):
        op, _ = self.make()
        emit(op, 0, 0, [(("g", 5), 1), (("g", 3), 1)])
        out = op.on_recompute(0, {"g"})
        assert out[0].weight(("g", 3)) == 1

    def test_recompute_corrects_previous_output(self):
        op, _ = self.make()
        emit(op, 0, 0, [(("g", 5), 1)])
        op.on_recompute(0, {"g"})
        emit(op, 0, 0, [(("g", 3), 1)])
        out = op.on_recompute(0, {"g"})
        assert out[0].weight(("g", 5)) == -1
        assert out[0].weight(("g", 3)) == 1

    def test_empty_group_retracts(self):
        op, _ = self.make()
        emit(op, 0, 0, [(("g", 5), 1)])
        op.on_recompute(0, {"g"})
        emit(op, 0, 0, [(("g", 5), -1)])
        out = op.on_recompute(0, {"g"})
        assert out[0].weight(("g", 5)) == -1

    def test_later_interesting_times_scheduled(self):
        op, sched = self.make()
        emit(op, 0, 3, [(("g", 5), 1)])
        op.on_recompute(3, {"g"})
        sched.requests.clear()
        # A change at iteration 1 must also revisit iteration 3.
        emit(op, 0, 1, [(("g", 2), 1)])
        assert (1, "g") in sched.requests
        assert (3, "g") in sched.requests

    def test_idempotent_recompute(self):
        op, _ = self.make()
        emit(op, 0, 0, [(("g", 5), 1)])
        op.on_recompute(0, {"g"})
        assert op.on_recompute(0, {"g"}) == {}


class TestDistinct:
    def test_presence_semantics(self):
        op = Distinct("d")
        CaptureScheduler(op)
        emit(op, 0, 0, [("a", 3)])
        out = op.on_recompute(0, {"a"})
        assert out[0].weight("a") == 1

    def test_disappearance(self):
        op = Distinct("d")
        CaptureScheduler(op)
        emit(op, 0, 0, [("a", 2)])
        op.on_recompute(0, {"a"})
        emit(op, 0, 0, [("a", -2)])
        out = op.on_recompute(0, {"a"})
        assert out[0].weight("a") == -1

    def test_partial_retraction_keeps_record(self):
        op = Distinct("d")
        CaptureScheduler(op)
        emit(op, 0, 0, [("a", 2)])
        op.on_recompute(0, {"a"})
        emit(op, 0, 0, [("a", -1)])
        assert op.on_recompute(0, {"a"}) == {}


class TestProbe:
    def test_collect_and_drain(self):
        op = Probe("p")
        emit(op, 0, 0, [("a", 1)])
        emit(op, 0, 1, [("b", 1)])
        assert op.collection().weight("a") == 1
        delta = op.take_epoch_delta()
        assert delta.weight("a") == 1 and delta.weight("b") == 1
        assert op.take_epoch_delta().is_empty()
        # Collection persists across drains.
        assert op.collection().weight("b") == 1
