"""Probe and delta-draining semantics of compiled programs."""


from repro.ddlog.dsl import Program


def build():
    prog = Program("p")
    base = prog.input("base", ("value",))
    doubled = prog.relation("doubled", ("value",))
    prog.rule(
        doubled,
        [base("x")],
        head_terms=("y",),
        lets=[("y", lambda env: env["x"] * 2)],
    )
    prog.probe(doubled)
    prog.probe(base)
    return prog, base, doubled


class TestProbes:
    def test_input_relations_probeable(self):
        prog, base, doubled = build()
        cp = prog.compile()
        cp.insert(base, (3,))
        cp.commit()
        assert cp.collection(base).weight((3,)) == 1
        assert cp.collection(doubled).weight((6,)) == 1

    def test_take_delta_drains_once(self):
        prog, base, doubled = build()
        cp = prog.compile()
        cp.insert(base, (1,))
        cp.commit()
        first = cp.take_delta(doubled)
        assert first.weight((2,)) == 1
        assert cp.take_delta(doubled).is_empty()

    def test_take_delta_accumulates_across_epochs_until_drained(self):
        prog, base, doubled = build()
        cp = prog.compile()
        cp.insert(base, (1,))
        cp.commit()
        cp.insert(base, (2,))
        cp.commit()
        delta = cp.take_delta(doubled)
        assert delta.weight((2,)) == 1 and delta.weight((4,)) == 1

    def test_insert_then_remove_nets_out(self):
        prog, base, doubled = build()
        cp = prog.compile()
        cp.insert(base, (1,))
        cp.commit()
        cp.take_delta(doubled)
        cp.insert(base, (5,))
        cp.commit()
        cp.remove(base, (5,))
        cp.commit()
        assert cp.take_delta(doubled).is_empty()

    def test_probe_idempotent_registration(self):
        prog, base, doubled = build()
        prog.probe(doubled)  # duplicate probe request is a no-op
        cp = prog.compile()
        cp.insert(base, (1,))
        cp.commit()
        assert cp.collection(doubled).weight((2,)) == 1

    def test_duplicate_record_weights(self):
        """Distinct relations collapse multiplicities; inputs keep them."""
        prog, base, doubled = build()
        cp = prog.compile()
        cp.insert(base, (1,))
        cp.insert(base, (1,))
        cp.commit()
        assert cp.collection(base).weight((1,)) == 2
        assert cp.collection(doubled).weight((2,)) == 1
