"""Recursion shapes beyond plain transitive closure: mutual recursion,
aggregates feeding recursion, and stratified downstream consumers."""


from repro.ddlog.dsl import Program, const


def positive(collection):
    return {record for record, weight in collection.items() if weight > 0}


class TestMutualRecursion:
    def build(self):
        """even/odd distance parity over a graph: mutually recursive."""
        prog = Program("parity")
        edge = prog.input("edge", ("src", "dst"))
        start = prog.input("start", ("node",))
        even = prog.relation("even", ("node",))
        odd = prog.relation("odd", ("node",))
        prog.rule(even, [start("x")], head_terms=("x",))
        prog.rule(odd, [even("x"), edge("x", "y")], head_terms=("y",))
        prog.rule(even, [odd("x"), edge("x", "y")], head_terms=("y",))
        prog.probe(even)
        prog.probe(odd)
        return prog, edge, start, even, odd

    def test_chain_parity(self):
        prog, edge, start, even, odd = self.build()
        cp = prog.compile()
        cp.insert(start, ("n0",))
        for i in range(5):
            cp.insert(edge, (f"n{i}", f"n{i+1}"))
        cp.commit()
        assert positive(cp.collection(even)) == {("n0",), ("n2",), ("n4",)}
        assert positive(cp.collection(odd)) == {("n1",), ("n3",), ("n5",)}

    def test_cycle_gives_both_parities(self):
        prog, edge, start, even, odd = self.build()
        cp = prog.compile()
        cp.insert(start, ("a",))
        for src, dst in [("a", "b"), ("b", "c"), ("c", "a")]:
            cp.insert(edge, (src, dst))
        cp.commit()
        # Odd cycle: every node reachable at both parities.
        assert positive(cp.collection(even)) == {("a",), ("b",), ("c",)}
        assert positive(cp.collection(odd)) == {("a",), ("b",), ("c",)}

    def test_incremental_deletion(self):
        prog, edge, start, even, odd = self.build()
        cp = prog.compile()
        cp.insert(start, ("n0",))
        for i in range(4):
            cp.insert(edge, (f"n{i}", f"n{i+1}"))
        cp.commit()
        cp.remove(edge, ("n1", "n2"))
        cp.commit()
        assert positive(cp.collection(even)) == {("n0",)}
        assert positive(cp.collection(odd)) == {("n1",)}


class TestAggregateFeedingRecursion:
    def test_downstream_consumer_of_recursive_aggregate(self):
        """A non-recursive consumer joined onto a recursive aggregate's
        output keeps exact multiplicity across epochs."""
        prog = Program("sp-consumer")
        edge = prog.input("edge", ("src", "dst", "cost"))
        cand = prog.relation("cand", ("src", "dst", "cost"))
        prog.rule(cand, [edge("x", "y", "c")], head_terms=("x", "y", "c"))

        def min_agg(group, counts):
            yield (group[0], group[1], min(r[2] for r in counts))

        dist = prog.aggregate(
            "dist", ("src", "dst", "cost"), cand,
            key=lambda r: (r[0], r[1]), agg=min_agg,
        )
        prog.rule(
            cand,
            [edge("x", "y", "c1"), dist("y", "z", "c2")],
            head_terms=("x", "z", "c"),
            lets=[("c", lambda env: env["c1"] + env["c2"])],
            where=lambda env: env["x"] != env["z"],
        )
        watch = prog.input("watch", ("src", "dst"))
        alarm = prog.relation("alarm", ("src", "dst", "cost"))
        prog.rule(
            alarm,
            [watch("s", "d"), dist("s", "d", "c")],
            head_terms=("s", "d", "c"),
            where=lambda env: env["c"] > 2,
        )
        prog.probe(alarm)
        cp = prog.compile()
        cp.insert(watch, ("a", "c"))
        for e in [("a", "b", 1), ("b", "c", 1)]:
            cp.insert(edge, e)
        cp.commit()
        assert positive(cp.collection(alarm)) == set()  # cost 2, no alarm
        cp.remove(edge, ("b", "c", 1))
        cp.insert(edge, ("b", "c", 5))
        cp.commit()
        assert positive(cp.collection(alarm)) == {("a", "c", 6)}
        cp.remove(edge, ("a", "b", 1))
        cp.commit()
        assert positive(cp.collection(alarm)) == set()  # unreachable

    def test_two_aggregates_same_source(self):
        """min and argmin over the same candidate relation (the OSPF
        pattern) stay mutually consistent under churn."""
        prog = Program("two-aggs")
        item = prog.input("item", ("group", "value", "tag"))

        def min_agg(group, counts):
            yield (group, min(r[1] for r in counts))

        def argmin_agg(group, counts):
            best = min(r[1] for r in counts)
            for r in sorted(counts):
                if r[1] == best:
                    yield (group, r[2])

        low = prog.aggregate("low", ("group", "value"), item,
                             key=lambda r: r[0], agg=min_agg)
        which = prog.aggregate("which", ("group", "tag"), item,
                               key=lambda r: r[0], agg=argmin_agg)
        prog.probe(low)
        prog.probe(which)
        cp = prog.compile()
        cp.insert(item, ("g", 5, "a"))
        cp.insert(item, ("g", 3, "b"))
        cp.insert(item, ("g", 3, "c"))
        cp.commit()
        assert positive(cp.collection(low)) == {("g", 3)}
        assert positive(cp.collection(which)) == {("g", "b"), ("g", "c")}
        cp.remove(item, ("g", 3, "b"))
        cp.remove(item, ("g", 3, "c"))
        cp.commit()
        assert positive(cp.collection(low)) == {("g", 5)}
        assert positive(cp.collection(which)) == {("g", "a")}


class TestDslEdgeCases:
    def test_rule_with_only_constants(self):
        prog = Program()
        flag = prog.input("flag", ("value",))
        on = prog.relation("on", ("marker",))
        prog.rule(on, [flag(const("enabled"))], head_terms=(const("yes"),))
        prog.probe(on)
        cp = prog.compile()
        cp.insert(flag, ("enabled",))
        cp.commit()
        assert positive(cp.collection(on)) == {("yes",)}
        cp.remove(flag, ("enabled",))
        cp.commit()
        assert positive(cp.collection(on)) == set()

    def test_same_relation_twice_in_body(self):
        """Self-join: sibling(x, y) :- parent(p, x), parent(p, y), x != y."""
        prog = Program()
        parent = prog.input("parent", ("parent", "child"))
        sibling = prog.relation("sibling", ("a", "b"))
        prog.rule(
            sibling,
            [parent("p", "x"), parent("p", "y")],
            head_terms=("x", "y"),
            where=lambda env: env["x"] != env["y"],
        )
        prog.probe(sibling)
        cp = prog.compile()
        cp.insert(parent, ("mom", "ann"))
        cp.insert(parent, ("mom", "bob"))
        cp.insert(parent, ("dad", "bob"))
        cp.commit()
        assert positive(cp.collection(sibling)) == {("ann", "bob"), ("bob", "ann")}
        cp.remove(parent, ("mom", "ann"))
        cp.commit()
        assert positive(cp.collection(sibling)) == set()
