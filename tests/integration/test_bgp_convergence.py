"""§6 integration: non-convergent BGP configurations are detected (rather
than looping forever) by the engine's convergence monitor — the
recurring-state detection the paper leaves as future work."""

import pytest

from repro.config.schema import (
    BgpNeighbor,
    BgpProcess,
    RouteMap,
    RouteMapClause,
    Snapshot,
)
from repro.ddlog.convergence import ConvergenceMonitor, NonConvergenceError
from repro.net.topologies import ring
from repro.routing.program import ControlPlane
from repro.workloads.fattree_configs import _base_device, asn_map


def bad_gadget_snapshot() -> Snapshot:
    """Griffin's BAD GADGET on a 3-ring around an origin.

    Topology: ring(4) where r0 is the origin and r1/r2/r3 form the wheel —
    but a plain ring lacks the spokes, so we use ring(3) plus import
    preferences: each router prefers the route heard from its clockwise
    neighbor (length 2) over the direct route to the origin's prefix.

    With only three nodes, r0 originates; r1 and r2 each prefer the route
    through the other over the direct one — the classic DISAGREE/“bad
    gadget” family; under synchronous evaluation this oscillates forever.
    """
    labeled = ring(3)
    snap = Snapshot(labeled.topology)
    asns = asn_map(labeled)
    for name in labeled.topology.node_names():
        device = _base_device(labeled, name)
        device.bgp = BgpProcess(asn=asns[name])
        topo = labeled.topology
        for iface in topo.node(name).interfaces.values():
            peer = topo.neighbor_of(iface.id)
            if peer is not None:
                device.bgp.add_neighbor(
                    BgpNeighbor(iface.name, remote_as=asns[peer.node])
                )
        snap.add_device(device)
    # r0 originates its host prefix.
    snap.device("r0").bgp.networks.append(labeled.host_prefixes["r0"][0])
    # Ring wiring: rX eth1 -> rX+1 eth0.  r1 hears r0 directly on eth0 and
    # r2 on eth1; r2 hears r1 on eth0 and r0 on eth1.
    # DISAGREE: r1 prefers routes from r2 (eth1), r2 prefers routes from r1
    # (eth0) — each prefers the path through the other.
    for node, iface in (("r1", "eth1"), ("r2", "eth0")):
        device = snap.device(node)
        rm = RouteMap(f"PREF_{iface}", [RouteMapClause(10, "permit",
                                                       set_local_pref=200)])
        device.route_maps[rm.name] = rm
        device.bgp.neighbors[iface].route_map_in = rm.name
    snap.validate()
    return snap


class TestNonConvergenceDetection:
    def test_disagree_gadget_detected(self):
        snapshot = bad_gadget_snapshot()
        monitor = ConvergenceMonitor(max_iterations=5000, suspect_after=64)
        control_plane = ControlPlane(monitor=monitor)
        with pytest.raises(NonConvergenceError) as info:
            control_plane.update_to(snapshot)
        # Recurring-state detection fires long before the hard cap.
        assert info.value.iteration < 5000

    def test_stable_variant_converges(self):
        """Same gadget with preferences removed converges."""
        snapshot = bad_gadget_snapshot()
        for node in ("r1", "r2"):
            device = snapshot.device(node)
            for neighbor in device.bgp.neighbors.values():
                neighbor.route_map_in = None
            device.route_maps.clear()
        monitor = ConvergenceMonitor(max_iterations=5000, suspect_after=64)
        control_plane = ControlPlane(monitor=monitor)
        control_plane.update_to(snapshot)  # must not raise
        assert control_plane.fib()

    def test_detection_error_is_actionable(self):
        snapshot = bad_gadget_snapshot()
        monitor = ConvergenceMonitor(max_iterations=5000, suspect_after=64)
        control_plane = ControlPlane(monitor=monitor)
        with pytest.raises(NonConvergenceError) as info:
            control_plane.update_to(snapshot)
        assert "converge" in str(info.value)
