"""Integration stress: the mixed-protocol enterprise network exercises
OSPF + eBGP + two-way redistribution + IP-next-hop statics + ACLs at once,
validated against the independent baseline and through the full pipeline."""

import pytest

from repro.baseline import simulate
from repro.config.changes import (
    EnableInterface,
    RemoveRedistribution,
    ShutdownInterface,
    apply_changes,
)
from repro.core.realconfig import RealConfig
from repro.net.headerspace import HeaderBox, header
from repro.policy.spec import LoopFree, Reachability, isolation
from repro.policy.trace import trace_packet
from repro.routing.program import ControlPlane
from repro.workloads.enterprise import PROVIDER_PREFIX, build_enterprise


@pytest.fixture(scope="module")
def net():
    return build_enterprise(access_per_core=1)


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestConvergedState:
    def test_engine_matches_baseline(self, net):
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        assert set(control_plane.fib()) == simulate(net.snapshot).fib

    def test_access_learns_default_route(self, net):
        """The border's static default, redistributed into OSPF, reaches
        the access layer."""
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        fib = fib_map(control_plane)
        assert ("acc0", "0.0.0.0/0") in fib

    def test_provider_learns_user_subnets(self, net):
        """OSPF -> BGP redistribution exports the user subnets upstream."""
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        fib = fib_map(control_plane)
        assert fib[("provider", "172.16.0.0/24")] == ["cust0"]

    def test_access_learns_internet_prefix(self, net):
        """BGP -> OSPF redistribution imports the provider prefix inside."""
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        fib = fib_map(control_plane)
        assert ("acc0", str(PROVIDER_PREFIX)) in fib

    def test_removing_redistribution_cuts_the_leak(self, net):
        snap, _ = apply_changes(
            net.snapshot, [RemoveRedistribution("border", "bgp", "ospf")]
        )
        control_plane = ControlPlane()
        control_plane.update_to(snap)
        fib = fib_map(control_plane)
        assert ("provider", "172.16.0.0/24") not in fib
        assert set(control_plane.fib()) == simulate(snap).fib


class TestPipeline:
    def build_verifier(self, net):
        user_prefix = net.labeled.host_prefixes["acc0"][0]
        return RealConfig(
            net.snapshot,
            endpoints=net.access + [net.provider],
            policies=[
                LoopFree("loop-free"),
                Reachability(
                    "inet->acc0",
                    src=net.provider,
                    dst="acc0",
                    match=HeaderBox.build(
                        dst_ip=user_prefix.as_interval(),
                        proto=(6, 6),
                        dst_port=(443, 443),
                    ),
                ),
                isolation(
                    "no-telnet-from-inet",
                    net.provider,
                    "acc0",
                    HeaderBox.build(
                        dst_ip=user_prefix.as_interval(),
                        proto=(6, 6),
                        dst_port=(23, 23),
                    ),
                ),
            ],
        )

    def test_policies_hold(self, net):
        verifier = self.build_verifier(net)
        assert all(s.holds for s in verifier.policy_statuses())

    def test_core_failure_survives(self, net):
        verifier = self.build_verifier(net)
        delta = verifier.apply_change(ShutdownInterface("core0", "c1"))
        assert delta.ok
        delta = verifier.apply_change(EnableInterface("core0", "c1"))
        assert delta.ok

    def test_uplink_failure_breaks_inet_reachability(self, net):
        verifier = self.build_verifier(net)
        delta = verifier.apply_change(ShutdownInterface("border", "out0"))
        assert not delta.ok
        violated = {s.policy.name for s in delta.newly_violated}
        assert "inet->acc0" in violated

    def test_telnet_trace_stops_at_border(self, net):
        verifier = self.build_verifier(net)
        user_prefix = net.labeled.host_prefixes["acc0"][0]
        telnet = header(user_prefix.first() + 5, 0, 6, 23)
        traces = trace_packet(verifier.model, telnet, net.provider)
        assert traces
        assert all(not t.delivered() for t in traces)
        https = header(user_prefix.first() + 5, 0, 6, 443)
        traces = trace_packet(verifier.model, https, net.provider)
        assert any(t.delivered() for t in traces)

    def test_parity_after_changes(self, net):
        verifier = self.build_verifier(net)
        verifier.apply_change(ShutdownInterface("core1", "c2"))
        control_plane = ControlPlane()
        control_plane.update_to(verifier.snapshot)
        assert set(control_plane.fib()) == simulate(verifier.snapshot).fib


class TestScaledVariant:
    def test_two_access_per_core(self):
        net = build_enterprise(access_per_core=2)
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        assert set(control_plane.fib()) == simulate(net.snapshot).fib
        assert len(net.access) == 8

    def test_dual_homed_equivalence(self):
        net = build_enterprise(access_per_core=1, dual_homed=True)
        control_plane = ControlPlane()
        control_plane.update_to(net.snapshot)
        assert set(control_plane.fib()) == simulate(net.snapshot).fib

    def test_dual_homing_makes_internal_pairs_fault_tolerant(self):
        from repro.policy.mining import SpecificationMiner

        net = build_enterprise(access_per_core=1, dual_homed=True)
        spec = SpecificationMiner(
            net.labeled, net.snapshot, endpoints=net.access
        ).mine(with_widths=False)
        # All access<->access pairs survive any single link failure.
        assert len(spec.always_reachable) == len(net.access) * (
            len(net.access) - 1
        )
        assert not spec.fragile
