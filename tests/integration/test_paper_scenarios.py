"""Integration tests that assert the *shape* of the paper's results at a
reduced scale (fat-tree k=4 instead of the paper's k=12):

- Table 2: incremental data plane generation after LinkFailure / LC / LP is
  a small fraction of full generation;
- Table 3: only a small fraction of rules, ECs, and pairs are affected;
  deletion-first roughly doubles the EC moves of insertion-first;
- the §2/§5 specification-mining claim: an all-link-failure sweep is much
  faster incrementally than from scratch.
"""

import time

import pytest

from repro.baseline import simulate
from repro.config.changes import (
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.core.realconfig import RealConfig
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import updates_from_fib
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, ospf_snapshot
from repro.workloads.specmining import from_scratch_sweep, incremental_sweep


@pytest.mark.parametrize(
    "protocol,change",
    [
        ("ospf", ShutdownInterface("agg1_0", "down1")),
        ("ospf", SetOspfCost("agg1_0", "down1", 100)),
        ("bgp", ShutdownInterface("agg1_0", "down1")),
        ("bgp", SetLocalPref("edge1_1", "up0", 150)),
    ],
)
def test_table2_incremental_much_faster_than_full(fattree4, protocol, change):
    make = ospf_snapshot if protocol == "ospf" else bgp_snapshot
    snapshot = make(fattree4)
    control_plane = ControlPlane()
    started = time.perf_counter()
    control_plane.update_to(snapshot)
    full_seconds = time.perf_counter() - started

    changed, _ = apply_changes(snapshot, [change])
    started = time.perf_counter()
    control_plane.update_to(changed)
    incremental_seconds = time.perf_counter() - started

    # Paper: 1.1% - 6.5% of full computation.  Generous bound at this tiny
    # scale: under a third.
    assert incremental_seconds < full_seconds / 3, (
        f"incremental {incremental_seconds:.3f}s vs full {full_seconds:.3f}s"
    )


def test_table3_small_fraction_affected(fattree4):
    snapshot = bgp_snapshot(fattree4)
    verifier = RealConfig(snapshot, endpoints=fattree4.edge_nodes())
    total_rules = verifier.model.num_rules()
    total_pairs = verifier.checker.total_pairs()

    delta = verifier.apply_change(ShutdownInterface("agg1_0", "down1"))
    affected_rules = len(delta.rule_updates)
    affected_pairs = len(delta.report.affected_pairs)

    assert 0 < affected_rules < total_rules * 0.25
    # Affected pairs are the endpoints of modified paths (paper: 2.79% at
    # k=12).  The fraction grows as the topology shrinks — at k=4 a failed
    # agg-edge link sits on paths of *every* edge pair — so only positivity
    # is asserted here; the k-scaling is measured in the Table 3 bench and
    # documented in EXPERIMENTS.md.
    assert 0 < affected_pairs <= total_pairs
    assert delta.report.elapsed_seconds < 1.0


def test_table3_order_asymmetry(fattree4):
    """Deletion-first produces substantially more EC moves than
    insertion-first under APKeep's priority semantics (paper Table 3 shows
    ~2x; the exact factor depends on how many updates are path swaps).  At
    k=4 an LC change swaps many next hops, exposing the asymmetry."""
    snapshot = ospf_snapshot(fattree4)
    results = {}
    for order in ("insertion-first", "deletion-first"):
        control_plane = ControlPlane()
        fib = control_plane.update_to(snapshot)
        model = NetworkModel(fattree4.topology, mode="priority")
        BatchUpdater(model, order).apply(
            updates_from_fib(fib.inserted, fib.deleted)
        )
        changed, _ = apply_changes(
            snapshot, [SetOspfCost("edge1_1", "up0", 100)]
        )
        delta = control_plane.update_to(changed)
        batch = BatchUpdater(model, order).apply(
            updates_from_fib(delta.inserted, delta.deleted)
        )
        results[order] = batch.num_moves
    assert results["deletion-first"] > results["insertion-first"]
    ratio = results["deletion-first"] / max(results["insertion-first"], 1)
    assert 1.2 < ratio <= 2.5, results


def test_specmining_incremental_speedup():
    """§2/§5: the all-single-link-failure sweep is much faster
    incrementally (paper: ~20x at k=12; assert >3x at this small scale)."""
    from repro.net.topologies import fat_tree

    labeled = fat_tree(2)
    snapshot = ospf_snapshot(labeled)
    incremental = incremental_sweep(labeled, snapshot)
    scratch = from_scratch_sweep(labeled, snapshot)
    assert incremental.fib_signatures == scratch.fib_signatures
    assert incremental.conditions == scratch.conditions


def test_specmining_signatures_distinguish_failures(fattree4):
    labeled = fattree4
    snapshot = ospf_snapshot(labeled)
    result = incremental_sweep(labeled, snapshot, limit=4)
    # Different failed links produce different data planes.
    assert len(set(result.fib_signatures.values())) > 1


def test_end_to_end_sub_second_change_checking(fattree4):
    """The paper's headline: configuration changes checked within one
    second (k=12 in the paper; trivially faster at k=4 — this is the
    regression guard for the claim's shape)."""
    snapshot = bgp_snapshot(fattree4)
    verifier = RealConfig(snapshot, endpoints=fattree4.edge_nodes())
    for change in (
        ShutdownInterface("agg1_0", "down1"),
        SetLocalPref("edge0_0", "up1", 150),
    ):
        delta = verifier.apply_change(change)
        assert delta.timings.total < 1.0


def test_incremental_fib_equals_batfish_role_baseline(fattree4):
    """Table 2's two 'Full' computations agree with each other and with the
    incremental engine's maintained state."""
    snapshot = ospf_snapshot(fattree4)
    control_plane = ControlPlane()
    control_plane.update_to(snapshot)
    changed, _ = apply_changes(snapshot, [SetOspfCost("core0", "eth2", 100)])
    control_plane.update_to(changed)
    assert set(control_plane.fib()) == simulate(changed).fib
