"""The operator workflow end to end: snapshots on disk, hand-edited config
text, incremental verification of the edit (the CI story over real files)."""

import pytest

from repro.config.io import CONFIG_DIR, load_snapshot, save_snapshot
from repro.core.realconfig import RealConfig
from repro.net.headerspace import HeaderBox
from repro.net.topologies import fat_tree
from repro.policy.spec import LoopFree, Reachability
from repro.policy.trace import trace_packet
from repro.net.headerspace import header
from repro.workloads import bgp_snapshot


@pytest.fixture
def workspace(tmp_path):
    labeled = fat_tree(4)
    snapshot = bgp_snapshot(labeled)
    base = tmp_path / "base"
    save_snapshot(snapshot, base)
    return labeled, base, tmp_path


def edit(snapshot_dir, hostname, old, new):
    path = snapshot_dir / CONFIG_DIR / f"{hostname}.cfg"
    text = path.read_text()
    assert old in text
    path.write_text(text.replace(old, new))


def unshut(snapshot_dir, hostname, interface):
    """Remove the ' shutdown' line from one interface stanza."""
    path = snapshot_dir / CONFIG_DIR / f"{hostname}.cfg"
    lines = path.read_text().splitlines()
    out, in_stanza = [], False
    for line in lines:
        if not line.startswith(" "):
            in_stanza = line == f"interface {interface}"
        if in_stanza and line == " shutdown":
            continue
        out.append(line)
    path.write_text("\n".join(out) + "\n")


class TestDiskWorkflow:
    def test_edit_verify_loop(self, workspace):
        labeled, base, tmp = workspace
        dst_prefix = labeled.host_prefixes["edge3_0"][0]
        verifier = RealConfig(
            load_snapshot(base),
            endpoints=labeled.edge_nodes(),
            policies=[
                LoopFree("loop-free"),
                Reachability(
                    "e00->e30", src="edge0_0", dst="edge3_0",
                    match=HeaderBox.from_dst_prefix(dst_prefix),
                ),
            ],
        )

        # Edit 1: drain one aggregation downlink.  Survives.
        changed = tmp / "change1"
        save_snapshot(verifier.snapshot, changed)
        edit(changed, "agg3_0", "interface down0", "interface down0\n shutdown")
        delta = verifier.verify_snapshot(load_snapshot(changed))
        assert delta.ok
        assert delta.line_diff.size() == 1

        # Edit 2: drain the second one too.  edge3_0 is cut off.
        changed2 = tmp / "change2"
        save_snapshot(verifier.snapshot, changed2)
        edit(changed2, "agg3_1", "interface down0", "interface down0\n shutdown")
        delta = verifier.verify_snapshot(load_snapshot(changed2))
        assert not delta.ok
        assert [s.policy.name for s in delta.newly_violated] == ["e00->e30"]

        # Edit 3: revert the first drain.  Repaired.
        repaired = tmp / "repair"
        save_snapshot(verifier.snapshot, repaired)
        unshut(repaired, "agg3_0", "down0")
        delta = verifier.verify_snapshot(load_snapshot(repaired))
        assert [s.policy.name for s in delta.newly_satisfied] == ["e00->e30"]

    def test_trace_after_disk_round_trip(self, workspace):
        labeled, base, _ = workspace
        verifier = RealConfig(load_snapshot(base))
        dst_prefix = labeled.host_prefixes["edge2_1"][0]
        packet = header(dst_prefix.first() + 7)
        traces = trace_packet(verifier.model, packet, "edge0_0")
        assert traces
        assert all(t.delivered() for t in traces)
        assert all(t.path[-1] == "edge2_1" for t in traces)
        # Fat-tree ECMP: multiple paths from edge to edge across pods.
        assert len(traces) >= 2

    def test_full_fidelity_round_trip(self, workspace):
        labeled, base, _ = workspace
        from repro.baseline import simulate
        from repro.routing.program import ControlPlane

        restored = load_snapshot(base)
        control_plane = ControlPlane()
        control_plane.update_to(restored)
        assert set(control_plane.fib()) == simulate(restored).fib
