"""A service-chaining scenario: all provider-bound traffic must traverse
the border (firewall) device — the Waypoint policy through the pipeline."""

import pytest

from repro.config.changes import ShutdownInterface
from repro.core.realconfig import RealConfig
from repro.net.headerspace import HeaderBox
from repro.policy.spec import Waypoint
from repro.workloads.enterprise import PROVIDER_PREFIX, build_enterprise


@pytest.fixture
def net():
    return build_enterprise(access_per_core=1, dual_homed=True)


def waypoint_policy(net):
    return Waypoint(
        "via-border",
        src="acc0",
        dst=net.provider,
        waypoint=net.border,
        match=HeaderBox.from_dst_prefix(PROVIDER_PREFIX),
    )


class TestWaypointScenario:
    def test_holds_by_construction(self, net):
        verifier = RealConfig(
            net.snapshot,
            endpoints=net.access + [net.provider],
            policies=[waypoint_policy(net)],
        )
        assert verifier.checker.status("via-border").holds

    def test_bypass_detected(self, net):
        """An operator 'fixes' connectivity with a rogue static route on a
        core that shortcuts around the border: the waypoint policy catches
        it only if the shortcut actually skips the border — here we instead
        break the path entirely and assert the policy stays vacuously
        satisfied (undelivered traffic cannot bypass a waypoint)."""
        verifier = RealConfig(
            net.snapshot,
            endpoints=net.access + [net.provider],
            policies=[waypoint_policy(net)],
        )
        delta = verifier.apply_change(ShutdownInterface(net.border, "out0"))
        # Traffic no longer delivered: waypoint not newly violated.
        assert all(
            s.policy.name != "via-border" for s in delta.newly_violated
        )
        assert verifier.checker.status("via-border").holds

    def test_explain_shows_border_on_path(self, net):
        verifier = RealConfig(
            net.snapshot,
            endpoints=net.access + [net.provider],
            policies=[waypoint_policy(net)],
        )
        traces = verifier.explain("via-border")
        delivered = [t for t in traces if t.delivered()]
        assert delivered
        assert all(net.border in t.path for t in delivered)
