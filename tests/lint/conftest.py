"""Fixture builders for lint tests: tiny hand-rolled snapshots with exactly
one defect (positive fixture) or none (negative fixture) per pass."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config.schema import DeviceConfig, InterfaceConfig, Snapshot
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topology import InterfaceId, Topology


def two_router_snapshot(
    left_prefix: str = "10.0.0.0/30",
    right_prefix: Optional[str] = None,
) -> Tuple[Snapshot, DeviceConfig, DeviceConfig]:
    """Two routers r1/r2 joined by one link on eth0.

    ``right_prefix`` defaults to the same subnet as the left end (the
    correct configuration); pass a different prefix to build mismatches.
    """
    lp = Prefix.parse(left_prefix)
    rp = Prefix.parse(right_prefix) if right_prefix is not None else lp
    topo = Topology()
    for name in ("r1", "r2"):
        topo.add_node(name)
    topo.add_interface("r1", "eth0", prefix=lp, address=lp.first() + 1)
    topo.add_interface("r2", "eth0", prefix=rp, address=rp.first() + 2)
    topo.add_link(InterfaceId("r1", "eth0"), InterfaceId("r2", "eth0"))

    r1 = DeviceConfig(hostname="r1")
    r1.interfaces["eth0"] = InterfaceConfig(
        "eth0", prefix=lp, address=lp.first() + 1
    )
    r2 = DeviceConfig(hostname="r2")
    r2.interfaces["eth0"] = InterfaceConfig(
        "eth0", prefix=rp, address=rp.first() + 2
    )
    snapshot = Snapshot(topo, {"r1": r1, "r2": r2})
    return snapshot, r1, r2


def addr(text: str) -> int:
    return parse_ipv4(text)
