"""Incremental lint edge cases around the device *set* and the topology:
devices appearing, disappearing, or renaming between the base and the new
snapshot, and topology-only changes (a link moved with zero config lines
touched).  In every case the incremental result must be byte-identical to
a full run."""

from __future__ import annotations

from repro.config.diff import diff_snapshots
from repro.config.schema import (
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Snapshot,
)
from repro.lint import LintRunner
from repro.net.addr import Prefix
from repro.net.topology import InterfaceId, Topology

from tests.lint.conftest import two_router_snapshot


def render(result):
    return [(str(d), d.fingerprint()) for d in result.diagnostics]


def assert_equivalent(runner, base, new):
    previous = runner.run(base)
    diff = diff_snapshots(base, new)
    incremental = runner.run_incremental(new, diff, previous)
    full = runner.run(new)
    assert render(incremental) == render(full)
    return incremental, full


class TestDeviceSetChanges:
    def test_device_added(self):
        snapshot, _r1, _r2 = two_router_snapshot()
        base = snapshot.clone()
        del base.devices["r2"]  # r1's link end is half-configured
        runner = LintRunner()
        incremental, full = assert_equivalent(runner, base, snapshot)
        # The base finding (half-configured link) must disappear once the
        # new device configures its end.
        assert "LNK003" not in {d.code for d in full.diagnostics}
        assert "r2" in incremental.graph.devices()

    def test_device_removed(self):
        snapshot, _r1, _r2 = two_router_snapshot()
        smaller = snapshot.clone()
        del smaller.devices["r2"]
        runner = LintRunner()
        incremental, full = assert_equivalent(runner, snapshot, smaller)
        assert "LNK003" in {d.code for d in full.diagnostics}
        assert "r2" not in incremental.graph.devices()
        # No stale diagnostics attributed to the departed device.
        assert all(d.device != "r2" for d in incremental.diagnostics)

    def test_device_renamed(self):
        snapshot, _r1, _r2 = two_router_snapshot()
        renamed = snapshot.clone()
        moved = renamed.devices.pop("r2")
        moved.hostname = "r9"
        renamed.devices["r9"] = moved
        runner = LintRunner()
        incremental, _full = assert_equivalent(runner, snapshot, renamed)
        devices = set(incremental.graph.devices())
        assert "r9" in devices and "r2" not in devices


def _triangle(links):
    """Three routers a/b/c, fully interface-configured, linked per
    ``links`` (pairs of node names); OSPF everywhere."""
    pairs = [("a", "b"), ("b", "c"), ("c", "a")]
    topo = Topology()
    subnets = {
        pair: Prefix.parse(f"10.1.{i}.0/30") for i, pair in enumerate(pairs)
    }
    devices = {}
    for name in ("a", "b", "c"):
        topo.add_node(name)
        devices[name] = DeviceConfig(hostname=name)
        devices[name].ospf = OspfProcess()
    for pair in pairs:
        prefix = subnets[pair]
        for side, node in enumerate(pair):
            if_name = f"to_{pair[1 - side]}"
            address = prefix.first() + 1 + side
            topo.add_interface(node, if_name, prefix=prefix, address=address)
            devices[node].interfaces[if_name] = InterfaceConfig(
                if_name, prefix=prefix, address=address, ospf_enabled=True
            )
    for pair in pairs:
        if pair in links:
            topo.add_link(
                InterfaceId(pair[0], f"to_{pair[1]}"),
                InterfaceId(pair[1], f"to_{pair[0]}"),
            )
    return Snapshot(topo, devices)


class TestTopologyOnlyChanges:
    def test_removed_link_with_empty_diff(self):
        base = _triangle([("a", "b"), ("b", "c"), ("c", "a")])
        severed = _triangle([("a", "b"), ("b", "c")])
        severed.devices = base.clone().devices  # identical configurations
        diff = diff_snapshots(base, severed)
        assert not list(diff.inserted) and not list(diff.deleted)
        runner = LintRunner()
        previous = runner.run(base)
        incremental = runner.run_incremental(severed, diff, previous)
        full = runner.run(severed)
        assert render(incremental) == render(full)
        # The topology delta must actually seed re-analysis even though no
        # config line changed: cross passes re-run on the link endpoints.
        assert incremental.units_run > 0
        assert "ospf-adjacency" in incremental.passes_run
        assert "partition-isolation" in incremental.passes_run

    def test_added_link_with_empty_diff(self):
        base = _triangle([("a", "b"), ("b", "c")])
        healed = _triangle([("a", "b"), ("b", "c"), ("c", "a")])
        healed.devices = base.clone().devices
        diff = diff_snapshots(base, healed)
        assert not list(diff.inserted) and not list(diff.deleted)
        runner = LintRunner()
        previous = runner.run(base)
        incremental = runner.run_incremental(healed, diff, previous)
        full = runner.run(healed)
        assert render(incremental) == render(full)
