"""CLI integration: the exit-code contract of ``repro lint`` and
``repro diff``, output formats, incremental mode, and suppression flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config.io import load_snapshot, save_snapshot
from repro.config.changes import AddStaticRouteIp, apply_changes
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topologies import ring
from repro.workloads import ospf_snapshot


@pytest.fixture()
def base_dir(tmp_path):
    snapshot = ospf_snapshot(ring(4))
    directory = tmp_path / "base"
    save_snapshot(snapshot, directory)
    return directory


@pytest.fixture()
def broken_dir(tmp_path, base_dir):
    snapshot = load_snapshot(base_dir)
    changed, _ = apply_changes(
        snapshot,
        [
            AddStaticRouteIp(
                "r0",
                Prefix.parse("203.0.113.0/24"),
                parse_ipv4("172.31.0.9"),
            )
        ],
    )
    directory = tmp_path / "broken"
    save_snapshot(changed, directory)
    return directory


class TestLintExitCodes:
    def test_clean_snapshot_exits_zero(self, base_dir, capsys):
        assert main(["lint", str(base_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_exits_one(self, broken_dir, capsys):
        assert main(["lint", str(broken_dir)]) == 1
        assert "STA001" in capsys.readouterr().out

    def test_fail_on_never_exits_zero(self, broken_dir):
        assert main(["lint", str(broken_dir), "--fail-on", "never"]) == 0

    def test_suppression_flag(self, broken_dir):
        assert main(["lint", str(broken_dir), "--suppress", "STA*"]) == 0

    def test_bad_suppression_exits_two(self, broken_dir):
        assert main(["lint", str(broken_dir), "--suppress", ""]) == 2

    def test_missing_snapshot_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2


class TestLintFormats:
    def test_json(self, broken_dir, capsys):
        assert main(["lint", str(broken_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(
            d["code"] == "STA001" for d in payload["diagnostics"]
        )

    def test_sarif(self, broken_dir, capsys):
        assert main(["lint", str(broken_dir), "--format", "sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"]


class TestLintIncremental:
    def test_base_scopes_to_diff(self, base_dir, broken_dir, capsys):
        code = main(
            ["lint", str(broken_dir), "--base", str(base_dir)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "STA001" in captured.out
        assert "incremental" in captured.err
        # strictly fewer than the 8 registered passes re-ran
        ran, total = captured.err.split("incremental: ")[1].split(" ")[0].split("/")
        assert int(ran) < int(total)


class TestDiffExitCodes:
    def test_identical_exits_zero(self, base_dir):
        assert main(["diff", str(base_dir), str(base_dir)]) == 0

    def test_nonempty_diff_exits_one(self, base_dir, broken_dir):
        assert main(["diff", str(base_dir), str(broken_dir)]) == 1

    def test_unparseable_snapshot_exits_two(self, base_dir, tmp_path, capsys):
        bad = tmp_path / "bad"
        import shutil

        shutil.copytree(base_dir, bad)
        config = bad / "configs" / "r0.cfg"
        config.write_text(config.read_text() + "frobnicate everything\n")
        assert main(["diff", str(base_dir), str(bad)]) == 2
        # the satellite fix: the offending *file* is named in the error
        assert "r0.cfg" in capsys.readouterr().err


class TestVerifyLintGate:
    def test_enforce_refuses(self, base_dir, broken_dir, capsys):
        code = main(
            ["verify", str(base_dir), str(broken_dir), "--lint", "enforce"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REFUSED by lint gate" in captured.err

    def test_warn_annotates(self, base_dir, broken_dir, capsys):
        code = main(
            ["verify", str(base_dir), str(broken_dir), "--lint", "warn"]
        )
        captured = capsys.readouterr()
        assert "lint:" in captured.out
        assert "STA001" in captured.out
        # the static route is a blackhole the policy checker may or may not
        # flag; the lint annotation itself must not change the exit contract
        assert code in (0, 1)
