"""The cross-device passes (ADR/LNK/BGP/BLK/RDL/ISO): one positive
(defect present, diagnostic emitted) and one negative (clean network,
silent) fixture per finding code, plus per-pass telemetry and the
``--explain`` catalog."""

from __future__ import annotations

import pytest

from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    OspfProcess,
    Redistribution,
    StaticRoute,
)
from repro.lint import LintRunner
from repro.lint.passes import explain_code, rule_catalog
from repro.net.addr import Prefix
from repro.net.topologies import ring
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    names,
    set_metrics,
    set_tracer,
)
from repro.workloads import bgp_snapshot, ospf_snapshot

from tests.lint.conftest import two_router_snapshot


def run_codes(snapshot):
    result = LintRunner().run(snapshot)
    return {diag.code for diag in result.diagnostics}, result


def codes_with_prefix(codes, prefix):
    return {c for c in codes if c.startswith(prefix)}


def bgp_pair(left_asn=65001, right_asn=65002):
    """Two routers with a correct eBGP session over their shared link."""
    snapshot, r1, r2 = two_router_snapshot()
    r1.bgp = BgpProcess(asn=left_asn)
    r1.bgp.add_neighbor(BgpNeighbor("eth0", right_asn))
    r2.bgp = BgpProcess(asn=right_asn)
    r2.bgp.add_neighbor(BgpNeighbor("eth0", left_asn))
    return snapshot, r1, r2


def ospf_pair():
    snapshot, r1, r2 = two_router_snapshot()
    for device in (r1, r2):
        device.ospf = OspfProcess()
        device.interfaces["eth0"].ospf_enabled = True
    return snapshot, r1, r2


class TestLinkEndpointConsistency:
    def test_subnet_mismatch_errors(self):
        snapshot, _r1, _r2 = two_router_snapshot(
            "10.0.0.0/30", "10.0.1.0/30"
        )
        codes, result = run_codes(snapshot)
        assert "LNK001" in codes
        (diag,) = [d for d in result.diagnostics if d.code == "LNK001"]
        assert "subnet mismatch" in diag.message

    def test_mtu_mismatch_warns(self):
        snapshot, _r1, r2 = two_router_snapshot()
        r2.interfaces["eth0"].mtu = 9000
        codes, _ = run_codes(snapshot)
        assert "LNK002" in codes

    def test_half_configured_link_warns(self):
        snapshot, _r1, r2 = two_router_snapshot()
        del r2.interfaces["eth0"]
        codes, _ = run_codes(snapshot)
        assert "LNK003" in codes

    def test_shutdown_link_is_exempt(self):
        snapshot, r1, _r2 = two_router_snapshot("10.0.0.0/30", "10.0.1.0/30")
        r1.interfaces["eth0"].shutdown = True
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "LNK")

    def test_matching_link_is_clean(self):
        snapshot, _r1, _r2 = two_router_snapshot()
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "LNK")


class TestBgpSessionConsistency:
    def test_clean_session(self):
        snapshot, _r1, _r2 = bgp_pair()
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "BGP")

    def test_asymmetric_session_errors(self):
        snapshot, _r1, r2 = bgp_pair()
        del r2.bgp.neighbors["eth0"]
        codes, _ = run_codes(snapshot)
        assert "BGP001" in codes

    def test_remote_as_mismatch_errors(self):
        snapshot, _r1, r2 = bgp_pair()
        r2.bgp.asn = 65099  # r1 still expects remote-as 65002
        r2.bgp.neighbors["eth0"].remote_as = 65001  # keep r2's half right
        codes, result = run_codes(snapshot)
        assert "BGP002" in codes
        (diag,) = [d for d in result.diagnostics if d.code == "BGP002"]
        assert diag.device == "r1"

    def test_neighbor_into_the_void_warns(self):
        from repro.config.schema import InterfaceConfig

        snapshot, r1, _r2 = bgp_pair()
        r1.interfaces["eth9"] = InterfaceConfig(
            "eth9", prefix=Prefix.parse("10.9.0.0/30"), address=0x0A090001
        )
        r1.bgp.add_neighbor(BgpNeighbor("eth9", 65044))
        codes, _ = run_codes(snapshot)
        assert "BGP003" in codes

    def test_peer_shutdown_warns(self):
        snapshot, _r1, r2 = bgp_pair()
        r2.interfaces["eth0"].shutdown = True
        codes, result = run_codes(snapshot)
        assert "BGP004" in codes
        (diag,) = [d for d in result.diagnostics if d.code == "BGP004"]
        assert diag.device == "r1"


class TestCrossDeviceBlackholes:
    PREFIX = Prefix.parse("203.0.113.0/24")

    def _with_static(self):
        snapshot, r1, r2 = two_router_snapshot()
        r1.static_routes.append(
            StaticRoute(
                self.PREFIX, next_hop_ip=r2.interfaces["eth0"].address
            )
        )
        return snapshot, r1, r2

    def test_peer_acl_drop_errors(self):
        snapshot, _r1, r2 = self._with_static()
        r2.ospf = OspfProcess()  # can forward — only the ACL is the problem
        r2.acls["BLOCK"] = Acl(
            "BLOCK", entries=[AclEntry(10, "deny", dst=self.PREFIX)]
        )
        r2.interfaces["eth0"].acl_in = "BLOCK"
        codes, result = run_codes(snapshot)
        assert "BLK001" in codes
        (diag,) = [d for d in result.diagnostics if d.code == "BLK001"]
        assert diag.device == "r1"

    def test_earlier_permit_clears_the_drop(self):
        snapshot, _r1, r2 = self._with_static()
        r2.ospf = OspfProcess()
        r2.acls["BLOCK"] = Acl(
            "BLOCK",
            entries=[
                AclEntry(5, "permit", dst=self.PREFIX),
                AclEntry(10, "deny", dst=self.PREFIX),
            ],
        )
        r2.interfaces["eth0"].acl_in = "BLOCK"
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "BLK")

    def test_peer_cannot_forward_errors(self):
        snapshot, _r1, _r2 = self._with_static()
        codes, _ = run_codes(snapshot)
        assert "BLK002" in codes

    def test_routing_peer_is_clean(self):
        snapshot, _r1, r2 = self._with_static()
        r2.ospf = OspfProcess()
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "BLK")

    def test_peer_with_covering_static_is_clean(self):
        snapshot, _r1, r2 = self._with_static()
        r2.static_routes.append(
            StaticRoute(self.PREFIX, next_hop_interface="eth0")
        )
        codes, _ = run_codes(snapshot)
        assert not codes_with_prefix(codes, "BLK")


class TestNetworkRedistributionLoops:
    def _mutual_pair(self):
        """Both protocol domains connected; redistribution split across
        the two border devices in opposite directions."""
        snapshot, r1, r2 = bgp_pair()
        for device in (r1, r2):
            device.ospf = OspfProcess()
            device.interfaces["eth0"].ospf_enabled = True
        r1.bgp.redistribute.append(Redistribution("ospf"))
        r2.ospf.redistribute.append(Redistribution("bgp"))
        return snapshot, r1, r2

    def test_connected_loop_warns_both_participants(self):
        snapshot, _r1, _r2 = self._mutual_pair()
        codes, result = run_codes(snapshot)
        assert "RDL001" in codes
        diags = [d for d in result.diagnostics if d.code == "RDL001"]
        assert {d.device for d in diags} == {"r1", "r2"}

    def test_disconnected_ospf_domains_stay_silent(self):
        snapshot, r1, r2 = self._mutual_pair()
        # Sever the OSPF adjacency: the textual cycle (RED001) remains,
        # but routes cannot actually circulate.
        r1.interfaces["eth0"].ospf_enabled = False
        r2.interfaces["eth0"].ospf_enabled = False
        codes, _ = run_codes(snapshot)
        assert "RED001" in codes
        assert not codes_with_prefix(codes, "RDL")

    def test_single_border_device_is_red002s_problem(self):
        snapshot, r1, _r2 = self._mutual_pair()
        # Move both directions onto r1.
        snapshot.devices["r2"].ospf.redistribute.clear()
        r1.ospf.redistribute.append(Redistribution("bgp"))
        codes, _ = run_codes(snapshot)
        assert "RED002" in codes
        assert not codes_with_prefix(codes, "RDL")


class TestPartitionIsolation:
    def test_partitioned_device_errors(self):
        snapshot, _r1, r2 = two_router_snapshot()
        r2.interfaces["eth0"].shutdown = True
        codes, result = run_codes(snapshot)
        assert "ISO001" in codes
        assert "r1" in {
            d.device for d in result.diagnostics if d.code == "ISO001"
        }

    def test_protocol_island_warns(self):
        snapshot, _r1, r2 = ospf_pair()
        r2.interfaces["eth0"].ospf_enabled = False
        codes, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "ISO002"]
        assert any(d.device == "r1" for d in diags)

    def test_clean_ring_is_silent(self):
        codes, _ = run_codes(ospf_snapshot(ring(4)))
        assert not codes_with_prefix(codes, "ISO")
        codes, _ = run_codes(bgp_snapshot(ring(4)))
        assert not codes_with_prefix(codes, "ISO")


class TestCleanNetworksStayClean:
    """No false positives from any cross-device pass on the canonical
    workload snapshots."""

    @pytest.mark.parametrize("build", [ospf_snapshot, bgp_snapshot])
    def test_ring_is_diagnostic_free(self, build):
        result = LintRunner().run(build(ring(6)))
        assert result.diagnostics == []


class TestPerPassTelemetry:
    def test_counters_and_spans_per_pass(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        previous_metrics = set_metrics(registry)
        previous_tracer = set_tracer(tracer)
        try:
            snapshot, _r1, _r2 = two_router_snapshot(
                "10.0.0.0/30", "10.0.1.0/30"
            )
            LintRunner().run(snapshot)
        finally:
            set_metrics(previous_metrics)
            set_tracer(previous_tracer)
        lnk = {"pass": "LNK"}
        assert registry.value(names.LINT_PASS_FINDINGS, **lnk) >= 1
        assert registry.value(names.LINT_PASS_OBJECTS, **lnk) >= 1
        # A clean pass still reports its scanned objects.
        assert registry.value(names.LINT_PASS_OBJECTS, **{"pass": "ISO"}) >= 1
        span_names = {s.name for s in tracer.finished}
        assert names.SPAN_LINT_PASS_PREFIX + "LNK" in span_names
        assert names.SPAN_LINT_PASS_PREFIX + "BGP" in span_names


class TestExplain:
    @pytest.mark.parametrize(
        "code",
        [
            "LNK001",
            "LNK002",
            "LNK003",
            "BGP001",
            "BGP002",
            "BGP003",
            "BGP004",
            "BLK001",
            "BLK002",
            "RDL001",
            "ISO001",
            "ISO002",
            "ADR001",
            "ADR002",
        ],
    )
    def test_every_new_code_is_documented(self, code):
        text = explain_code(code)
        assert text is not None
        assert code in text

    def test_pass_prefix_lists_all_codes(self):
        text = explain_code("lnk")
        assert text is not None
        for code in ("LNK001", "LNK002", "LNK003"):
            assert code in text

    def test_unknown_code_is_none(self):
        assert explain_code("NOPE999") is None

    def test_catalog_covers_every_pass(self):
        prefixes = {code for code, _name, _desc in rule_catalog()}
        assert {"LNK", "BGP", "BLK", "RDL", "ISO", "ADR"} <= prefixes
