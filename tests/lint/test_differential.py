"""Differential oracle: incremental lint must be byte-identical to a full
run on hundreds of randomized (snapshot, change) workloads.

Each trial starts from a canonical workload snapshot, applies a chain of
random configuration mutations (injected defects included), and after
every step compares ``run_incremental`` — seeded from the *previous
incremental* result, so carry-forward is exercised across the chain —
against a from-scratch ``run`` of the same passes on the same snapshot.
Codes, devices, messages, ordering, and stable fingerprints must match
exactly."""

from __future__ import annotations

import random

import pytest

from repro.config.diff import diff_snapshots
from repro.config.schema import (
    Acl,
    AclEntry,
    Redistribution,
    StaticRoute,
)
from repro.lint import LintRunner
from repro.net.addr import Prefix
from repro.net.topologies import fat_tree, ring
from repro.workloads import bgp_snapshot, ospf_snapshot

#: (label, topology builder, snapshot builder)
CONFIGURATIONS = [
    ("ring6-ospf", lambda: ring(6), ospf_snapshot),
    ("ring6-bgp", lambda: ring(6), bgp_snapshot),
    ("fattree4-ospf", lambda: fat_tree(4), ospf_snapshot),
    ("fattree4-bgp", lambda: fat_tree(4), bgp_snapshot),
]
SEEDS_PER_CONFIGURATION = 17
CHAIN_LENGTH = 3
# 4 configurations x 17 seeds x 3 chained changes = 204 workloads.


def _pick_interface(rng, snapshot):
    device = snapshot.devices[rng.choice(sorted(snapshot.devices))]
    name = rng.choice(sorted(device.interfaces))
    return device, device.interfaces[name]


def _mutate(rng: random.Random, snapshot) -> None:
    """Apply one random configuration mutation in place."""
    choice = rng.randrange(10)
    if choice == 0:  # flip administrative state
        _, iface = _pick_interface(rng, snapshot)
        iface.shutdown = not iface.shutdown
    elif choice == 1:  # MTU drift
        _, iface = _pick_interface(rng, snapshot)
        iface.mtu = rng.choice([1400, 1500, 9000])
    elif choice == 2:  # renumber one end of a link
        _, iface = _pick_interface(rng, snapshot)
        prefix = Prefix.parse(f"10.254.{rng.randrange(200)}.0/30")
        iface.prefix = prefix
        iface.address = prefix.first() + 1
    elif choice == 3:  # static route, resolvable or not
        device, _ = _pick_interface(rng, snapshot)
        other = snapshot.devices[rng.choice(sorted(snapshot.devices))]
        candidates = [
            i.address for i in other.interfaces.values()
            if i.address is not None
        ]
        next_hop = (
            rng.choice(candidates)
            if candidates and rng.random() < 0.7
            else Prefix.parse("192.0.2.0/24").first() + 1
        )
        device.static_routes.append(
            StaticRoute(
                Prefix.parse(f"198.51.{rng.randrange(200)}.0/24"),
                next_hop_ip=next_hop,
            )
        )
    elif choice == 4:  # inbound deny ACL
        device, iface = _pick_interface(rng, snapshot)
        name = f"DIFF{rng.randrange(8)}"
        device.acls[name] = Acl(
            name,
            entries=[
                AclEntry(
                    10,
                    rng.choice(["deny", "permit"]),
                    dst=Prefix.parse(f"198.51.{rng.randrange(200)}.0/24"),
                )
            ],
        )
        iface.acl_in = name
    elif choice == 5:  # OSPF membership flip
        device, iface = _pick_interface(rng, snapshot)
        if device.ospf is not None:
            iface.ospf_enabled = not iface.ospf_enabled
        else:
            iface.shutdown = not iface.shutdown
    elif choice == 6:  # drop one half of a BGP session
        device, _ = _pick_interface(rng, snapshot)
        if device.bgp is not None and device.bgp.neighbors:
            del device.bgp.neighbors[
                rng.choice(sorted(device.bgp.neighbors))
            ]
        else:
            _, iface = _pick_interface(rng, snapshot)
            iface.mtu = 1280
    elif choice == 7:  # corrupt a remote-as
        device, _ = _pick_interface(rng, snapshot)
        if device.bgp is not None and device.bgp.neighbors:
            neighbor = device.bgp.neighbors[
                rng.choice(sorted(device.bgp.neighbors))
            ]
            neighbor.remote_as += rng.randrange(1, 3)
        else:
            _, iface = _pick_interface(rng, snapshot)
            iface.shutdown = not iface.shutdown
    elif choice == 8:  # redistribution statement
        device, _ = _pick_interface(rng, snapshot)
        if device.bgp is not None:
            device.bgp.redistribute.append(Redistribution("ospf"))
        elif device.ospf is not None:
            device.ospf.redistribute.append(Redistribution("bgp"))
    else:  # unconfigure an interface entirely (half-configured link)
        device, iface = _pick_interface(rng, snapshot)
        if len(device.interfaces) > 1:
            del device.interfaces[iface.name]
        else:
            iface.shutdown = not iface.shutdown


def _render(result):
    return [(str(d), d.fingerprint()) for d in result.diagnostics]


@pytest.mark.parametrize(
    "label,topo,build",
    [(label, topo, build) for label, topo, build in CONFIGURATIONS],
    ids=[c[0] for c in CONFIGURATIONS],
)
def test_incremental_equals_full_on_random_chains(label, topo, build):
    runner = LintRunner()
    for seed in range(SEEDS_PER_CONFIGURATION):
        rng = random.Random(f"{label}-{seed}")
        snapshot = build(topo())
        previous = runner.run(snapshot)
        for _step in range(CHAIN_LENGTH):
            changed = snapshot.clone()
            _mutate(rng, changed)
            diff = diff_snapshots(snapshot, changed)
            incremental = runner.run_incremental(changed, diff, previous)
            full = runner.run(changed)
            assert _render(incremental) == _render(full), (
                f"divergence at {label} seed={seed} step={_step}: "
                f"{diff.summary()}"
            )
            assert incremental.objects_total == full.objects_total
            snapshot, previous = changed, incremental


def test_incremental_never_rescans_more_than_full():
    """On a one-device change in a larger network the incremental run must
    analyze strictly fewer graph objects than the full run."""
    runner = LintRunner()
    snapshot = ospf_snapshot(fat_tree(4))
    previous = runner.run(snapshot)
    changed = snapshot.clone()
    changed.devices["edge0_0"].interfaces[
        sorted(changed.devices["edge0_0"].interfaces)[0]
    ].mtu = 9000
    diff = diff_snapshots(snapshot, changed)
    incremental = runner.run_incremental(changed, diff, previous)
    full = runner.run(changed)
    assert _render(incremental) == _render(full)
    assert incremental.objects_scanned < full.objects_scanned
    # The dependency-scoped run touches a small fraction of the object
    # scans a full run performs (the ISSUE's <20% bar is asserted at k=8
    # by the benchmark; k=4 already clears 50% with margin).
    assert incremental.objects_scanned / full.objects_scanned < 0.5
