"""The network dependency graph: construction, incremental patching,
closure queries, fingerprints, and the snapshot-keyed cache."""

from __future__ import annotations

import pytest

from repro.config.changes import (
    AddStaticRouteIp,
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.lint.graph import (
    KIND_INTERFACE,
    KIND_OSPF,
    KIND_STATIC_ROUTE,
    NetworkDependencyGraph,
    ObjectRef,
    changed_objects,
    clear_graph_cache,
    device_fingerprint,
    graph_for,
    resolve_next_hop,
    topology_touched_devices,
    union_coupling,
)
from repro.net.addr import Prefix
from repro.net.topologies import ring
from repro.workloads import bgp_snapshot, ospf_snapshot

from tests.lint.conftest import two_router_snapshot


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


class TestBuild:
    def test_every_device_contributes_objects(self):
        snapshot = ospf_snapshot(ring(4))
        graph = NetworkDependencyGraph.build(snapshot)
        assert graph.devices() == sorted(snapshot.devices)
        for device in graph.devices():
            kinds = {ref.kind for ref in graph.device_objects(device)}
            assert KIND_INTERFACE in kinds
            assert KIND_OSPF in kinds
        assert graph.num_objects() == sum(
            graph.num_device_objects(d) for d in graph.devices()
        )

    def test_link_and_adjacency_edges_present(self):
        snapshot = ospf_snapshot(ring(4))
        graph = NetworkDependencyGraph.build(snapshot)
        relations = {relation for _a, _b, relation in graph.cross_edges}
        assert "link" in relations
        assert "ospf-adjacency" in relations

    def test_bgp_session_edges_present(self):
        snapshot = bgp_snapshot(ring(4))
        graph = NetworkDependencyGraph.build(snapshot)
        relations = {relation for _a, _b, relation in graph.cross_edges}
        assert "bgp-session" in relations

    def test_next_hop_edge_follows_static_route(self):
        base = ospf_snapshot(ring(4))
        changed, _ = apply_changes(
            base,
            [
                AddStaticRouteIp(
                    "r0",
                    Prefix.parse("203.0.113.0/24"),
                    base.devices["r1"].interfaces["eth0"].address,
                )
            ],
        )
        graph = NetworkDependencyGraph.build(changed)
        hops = [
            (a, b)
            for a, b, relation in graph.cross_edges
            if relation == "next-hop"
        ]
        assert any(
            a.device == "r0" and a.kind == KIND_STATIC_ROUTE and b.device == "r1"
            for a, b in hops
        )

    def test_device_coupling_mirrors_topology(self):
        snapshot = ospf_snapshot(ring(4))
        graph = NetworkDependencyGraph.build(snapshot)
        assert graph.neighbors["r0"] == {"r1", "r3"}
        assert graph.neighbors["r2"] == {"r1", "r3"}


class TestPatched:
    def test_patched_equals_fresh_build(self):
        base = ospf_snapshot(ring(4))
        old = NetworkDependencyGraph.build(base)
        changed, _diff = apply_changes(base, [SetOspfCost("r0", "eth0", 77)])
        patched = old.patched(changed, {"r0"})
        fresh = NetworkDependencyGraph.build(changed)
        assert patched == fresh
        assert patched.fingerprint() == fresh.fingerprint()

    def test_patched_shares_unchanged_contributions(self):
        base = ospf_snapshot(ring(4))
        old = NetworkDependencyGraph.build(base)
        changed, _diff = apply_changes(base, [SetOspfCost("r0", "eth0", 77)])
        patched = old.patched(changed, {"r0"})
        assert patched.objects_by_device["r2"] is old.objects_by_device["r2"]
        assert patched.objects_by_device["r0"] is not old.objects_by_device["r0"]

    def test_patched_picks_up_added_and_removed_devices(self):
        base = ospf_snapshot(ring(4))
        old = NetworkDependencyGraph.build(base)
        smaller = base.clone()
        del smaller.devices["r3"]
        patched = old.patched(smaller, set())
        assert "r3" not in patched.objects_by_device
        assert patched == NetworkDependencyGraph.build(smaller)

    def test_fingerprint_tracks_config_changes(self):
        base = ospf_snapshot(ring(4))
        changed, _ = apply_changes(base, [ShutdownInterface("r1", "eth0")])
        assert device_fingerprint(base.devices["r1"]) != device_fingerprint(
            changed.devices["r1"]
        )
        assert device_fingerprint(base.devices["r2"]) == device_fingerprint(
            changed.devices["r2"]
        )


class TestClosures:
    def test_ball_radius_one_on_a_ring(self):
        graph = NetworkDependencyGraph.build(ospf_snapshot(ring(6)))
        assert graph.ball({"r0"}, 1) == {"r5", "r0", "r1"}
        assert graph.ball({"r0"}, 2) == {"r4", "r5", "r0", "r1", "r2"}

    def test_component_covers_the_ring(self):
        graph = NetworkDependencyGraph.build(ospf_snapshot(ring(5)))
        assert graph.component({"r2"}) == {f"r{i}" for i in range(5)}

    def test_empty_seeds_stay_empty(self):
        graph = NetworkDependencyGraph.build(ospf_snapshot(ring(4)))
        assert graph.ball(set(), 3) == set()
        assert graph.component(set()) == set()

    def test_object_neighborhood(self):
        snapshot = ospf_snapshot(ring(4))
        graph = NetworkDependencyGraph.build(snapshot)
        seed = ObjectRef("r0", KIND_INTERFACE, "eth0")
        near = graph.neighborhood({seed}, 1)
        assert seed in near
        # One hop reaches the peer interface across the link.
        assert any(ref.device != "r0" for ref in near)


class TestTopologyDeltas:
    def test_touched_devices_of_a_removed_link(self):
        base = ospf_snapshot(ring(4))
        old = NetworkDependencyGraph.build(base)
        # Rebuild the same devices over a ring missing one link.
        smaller = ring(3)
        new_snapshot = ospf_snapshot(smaller)
        new = NetworkDependencyGraph.build(new_snapshot)
        touched = topology_touched_devices(old, new)
        assert "r3" in touched  # every link incident to r3 disappeared

    def test_union_coupling_keeps_old_edges(self):
        old = NetworkDependencyGraph.build(ospf_snapshot(ring(4)))
        new = NetworkDependencyGraph.build(ospf_snapshot(ring(3)))
        merged = union_coupling(old, new)
        # r3's old coupling survives in the union even though the new
        # graph no longer knows the device.
        assert merged["r3"] == {"r0", "r2"}

    def test_union_coupling_without_previous_graph(self):
        new = NetworkDependencyGraph.build(ospf_snapshot(ring(3)))
        assert union_coupling(None, new) == new.neighbors
        assert topology_touched_devices(None, new) == set()


class TestResolveNextHop:
    def test_resolves_to_peer_interface(self):
        snapshot, r1, r2 = two_router_snapshot()
        resolved = resolve_next_hop(
            snapshot, r1, r2.interfaces["eth0"].address
        )
        assert resolved == ("r2", "eth0")

    def test_unclaimed_address_is_none(self):
        snapshot, r1, _r2 = two_router_snapshot()
        assert resolve_next_hop(snapshot, r1, 0x0A0000FE) is None


class TestChangedObjects:
    def test_interface_line_maps_to_interface_object(self):
        base = ospf_snapshot(ring(4))
        _changed, diff = apply_changes(base, [SetOspfCost("r0", "eth0", 9)])
        refs = changed_objects(diff)
        assert ObjectRef("r0", KIND_INTERFACE, "eth0") in refs["r0"]


class TestCache:
    def test_graph_for_is_memoized(self):
        snapshot = ospf_snapshot(ring(4))
        first = graph_for(snapshot)
        again = graph_for(snapshot.clone())
        assert again is first

    def test_distinct_configurations_get_distinct_graphs(self):
        base = ospf_snapshot(ring(4))
        changed, _ = apply_changes(base, [SetOspfCost("r0", "eth0", 12)])
        assert graph_for(base) is not graph_for(changed)

    def test_clear_empties_the_cache(self):
        snapshot = ospf_snapshot(ring(4))
        first = graph_for(snapshot)
        clear_graph_cache()
        assert graph_for(snapshot) is not first
