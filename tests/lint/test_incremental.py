"""Incremental lint: diff-scoped re-running must be equivalent to a full
run while executing strictly fewer passes/units on small diffs."""

from __future__ import annotations

import pytest

from repro.config.changes import (
    AddAclEntry,
    AddStaticRouteIp,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.config.diff import diff_snapshots
from repro.config.schema import AclEntry
from repro.lint import (
    LintRunner,
    Suppression,
    stanza_kind,
    touched_kinds,
)
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topologies import fat_tree, ring
from repro.workloads import bgp_snapshot, ospf_snapshot


def diag_keys(result):
    return sorted(str(d) for d in result.diagnostics)


class TestStanzaKinds:
    @pytest.mark.parametrize(
        "stanza,kind",
        [
            ("", "top"),
            ("interface eth0", "interface"),
            ("ip access-list SEC_1", "acl"),
            ("route-map RM permit 10", "route-map"),
            ("router ospf 1", "router-ospf"),
            ("router bgp 65001", "router-bgp"),
        ],
    )
    def test_kinds(self, stanza, kind):
        assert stanza_kind(stanza) == kind

    def test_touched_kinds_of_a_cost_change(self):
        labeled = ring(4)
        base = ospf_snapshot(labeled)
        changed, diff = apply_changes(base, [SetOspfCost("r0", "eth0", 50)])
        assert touched_kinds(diff) == {"r0": {"interface"}}


class TestIncrementalEquivalence:
    """run_incremental(...) must reproduce run(...) on the new snapshot."""

    @pytest.mark.parametrize(
        "protocol,change",
        [
            ("ospf", SetOspfCost("r0", "eth0", 50)),
            ("ospf", ShutdownInterface("r1", "eth0")),
            (
                "ospf",
                AddStaticRouteIp(
                    "r2",
                    Prefix.parse("203.0.113.0/24"),
                    parse_ipv4("10.99.0.1"),
                ),
            ),
            ("bgp", SetLocalPref("r0", "eth0", 150)),
            (
                "bgp",
                AddAclEntry(
                    "r3", "NEW", AclEntry(10, "deny", proto=6)
                ),
            ),
        ],
    )
    def test_one_change(self, protocol, change):
        labeled = ring(4)
        base = (
            ospf_snapshot(labeled)
            if protocol == "ospf"
            else bgp_snapshot(labeled)
        )
        runner = LintRunner()
        previous = runner.run(base)
        changed, diff = apply_changes(base, [change])
        incremental = runner.run_incremental(changed, diff, previous)
        full = runner.run(changed)
        assert diag_keys(incremental) == diag_keys(full)

    def test_chained_changes(self):
        labeled = fat_tree(4)
        base = ospf_snapshot(labeled)
        runner = LintRunner()
        state = runner.run(base)
        snapshot = base
        for change in (
            SetOspfCost("agg0_0", "up0", 100),
            ShutdownInterface("core0", "eth0"),
        ):
            snapshot, diff = apply_changes(snapshot, [change])
            state = runner.run_incremental(snapshot, diff, state)
            assert diag_keys(state) == diag_keys(runner.run(snapshot))


class TestIncrementalScoping:
    def test_one_line_diff_runs_strictly_fewer_passes(self):
        """The acceptance criterion: a 1-line diff re-runs strictly fewer
        passes than a full-snapshot lint."""
        labeled = fat_tree(4)
        base = ospf_snapshot(labeled)
        runner = LintRunner()
        previous = runner.run(base)
        changed, diff = apply_changes(
            base, [SetOspfCost("agg0_0", "up0", 100)]
        )
        assert diff.size() == 1
        incremental = runner.run_incremental(changed, diff, previous)
        assert len(incremental.passes_run) < len(previous.passes_run)
        assert incremental.units_run < previous.units_run

    def test_acl_only_diff_skips_routing_passes(self):
        labeled = ring(4)
        base = bgp_snapshot(labeled)
        runner = LintRunner()
        previous = runner.run(base)
        changed, diff = apply_changes(
            base,
            [AddAclEntry("r0", "SEC", AclEntry(10, "permit"))],
        )
        incremental = runner.run_incremental(changed, diff, previous)
        # Device-scoped passes touched by "acl" plus the one cross-device
        # pass whose scope includes ACLs (blackhole analysis follows ACL
        # edits across the next-hop edge).
        assert set(incremental.passes_run) == {
            "undefined-references",
            "shadowed-acl-entries",
            "cross-device-blackholes",
        }

    def test_empty_diff_runs_nothing(self):
        labeled = ring(4)
        base = ospf_snapshot(labeled)
        runner = LintRunner()
        previous = runner.run(base)
        incremental = runner.run_incremental(
            base, diff_snapshots(base, base), previous
        )
        assert incremental.passes_run == []
        assert incremental.units_run == 0
        assert diag_keys(incremental) == diag_keys(previous)

    def test_untouched_device_diagnostics_carry_over(self):
        """A pre-existing defect on an untouched device must survive an
        incremental run that never revisits that device."""
        labeled = ring(4)
        base = ospf_snapshot(labeled)
        base = base.clone()
        # Plant a defect on r3: static route with unresolvable next hop.
        from repro.config.schema import StaticRoute

        base.devices["r3"].static_routes.append(
            StaticRoute(
                Prefix.parse("203.0.113.0/24"),
                next_hop_ip=parse_ipv4("172.31.0.9"),
            )
        )
        runner = LintRunner()
        previous = runner.run(base)
        assert any(d.code == "STA001" for d in previous.diagnostics)
        # Touch only r0's ACL config: static-route pass never re-runs.
        changed, diff = apply_changes(
            base, [AddAclEntry("r0", "SEC", AclEntry(10, "permit"))]
        )
        incremental = runner.run_incremental(changed, diff, previous)
        assert "static-route-nexthops" not in incremental.passes_run
        assert any(
            d.code == "STA001" and d.device == "r3"
            for d in incremental.diagnostics
        )


class TestSuppressions:
    def test_suppression_applies_to_incremental_runs(self):
        labeled = ring(4)
        base = ospf_snapshot(labeled)
        runner = LintRunner(suppressions=[Suppression("OSP*")])
        previous = runner.run(base)
        changed, diff = apply_changes(base, [SetOspfCost("r0", "eth0", 50)])
        incremental = runner.run_incremental(changed, diff, previous)
        assert not [d for d in incremental.diagnostics if d.code == "OSP003"]
        assert incremental.suppressed >= 1

    def test_device_scoped_suppression(self):
        labeled = ring(4)
        base = ospf_snapshot(labeled)
        changed, _ = apply_changes(base, [SetOspfCost("r0", "eth0", 50)])
        unsuppressed = LintRunner().run(changed)
        hits = [d for d in unsuppressed.diagnostics if d.code == "OSP003"]
        assert hits
        suppressed = LintRunner(
            suppressions=[Suppression("OSP003", hits[0].device)]
        ).run(changed)
        assert not any(d.code == "OSP003" for d in suppressed.diagnostics)
