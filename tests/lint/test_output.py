"""Output formatters: text, JSON, and SARIF 2.1.0 structure + line anchors."""

from __future__ import annotations

import json

from repro.config.lang import device_lines
from repro.config.schema import Acl, AclEntry
from repro.lint import LintRunner
from repro.lint.output import format_json, format_sarif, format_text

from tests.lint.conftest import two_router_snapshot


def defective_snapshot():
    snapshot, r1, _ = two_router_snapshot()
    r1.interfaces["eth0"].acl_in = "NOPE"  # REF001 (error)
    r1.acls["A"] = Acl(
        "A", [AclEntry(10, "permit"), AclEntry(20, "deny")]
    )  # ACL002 (error, masked opposite action)
    return snapshot


class TestText:
    def test_contains_codes_and_summary(self):
        snapshot = defective_snapshot()
        text = format_text(LintRunner().run(snapshot), snapshot)
        assert "REF001" in text
        assert "ACL002" in text
        assert "lint:" in text.splitlines()[-1]


class TestJson:
    def test_valid_and_complete(self):
        snapshot = defective_snapshot()
        result = LintRunner().run(snapshot)
        payload = json.loads(format_json(result, snapshot))
        assert payload["tool"] == "repro-lint"
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"REF001", "ACL002"} <= codes
        assert payload["passes_run"] == result.passes_run
        for diag in payload["diagnostics"]:
            assert {"code", "severity", "device", "stanza", "message"} <= set(
                diag
            )
            assert diag["line"] >= 1


class TestSarif:
    def test_structure(self):
        snapshot = defective_snapshot()
        sarif = json.loads(format_sarif(LintRunner().run(snapshot), snapshot))
        assert sarif["version"] == "2.1.0"
        assert "$schema" in sarif
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"REF001", "ACL002"} <= rule_ids
        assert run["results"]
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")
            (location,) = result["locations"]
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith(".cfg")
            assert physical["region"]["startLine"] >= 1

    def test_line_anchor_points_at_the_offending_line(self):
        snapshot = defective_snapshot()
        sarif = json.loads(format_sarif(LintRunner().run(snapshot), snapshot))
        rendered = [
            text for _, text in device_lines(snapshot.devices["r1"])
        ]
        ref = next(
            r
            for r in sarif["runs"][0]["results"]
            if r["ruleId"] == "REF001"
        )
        line_no = ref["locations"][0]["physicalLocation"]["region"]["startLine"]
        assert rendered[line_no - 1].strip() == "ip access-group NOPE in"


class TestFingerprints:
    def test_sarif_round_trip(self):
        """Every SARIF result carries a partialFingerprint that matches the
        recomputed fingerprint of its diagnostic."""
        snapshot = defective_snapshot()
        result = LintRunner().run(snapshot)
        sarif = json.loads(format_sarif(result, snapshot))
        by_fingerprint = {d.fingerprint(): d for d in result.diagnostics}
        for sarif_result in sarif["runs"][0]["results"]:
            fp = sarif_result["partialFingerprints"]["reproLintFingerprint/v1"]
            diag = by_fingerprint[fp]
            assert sarif_result["ruleId"] == diag.code
            assert sarif_result["message"]["text"] == diag.message

    def test_stable_across_line_shifts(self):
        """A fingerprint hashes code/device/object path, never line
        numbers: unrelated edits that shift the rendering keep it fixed."""
        from repro.config.schema import InterfaceConfig
        from repro.net.addr import Prefix

        snapshot = defective_snapshot()

        def fingerprints(snap):
            result = LintRunner().run(snap)
            return {
                d.fingerprint()
                for d in result.diagnostics
                if d.code in ("REF001", "ACL002")
            }

        before = fingerprints(snapshot)
        # Insert an interface that renders *above* the offending stanzas,
        # shifting every line number, without changing the findings.
        shifted = snapshot.clone()
        shifted.devices["r1"].interfaces["eth00"] = InterfaceConfig(
            "eth00", prefix=Prefix.parse("10.9.9.0/30"), address=0x0A090901
        )
        sarif = json.loads(
            format_sarif(LintRunner().run(shifted), shifted)
        )
        after = {
            r["partialFingerprints"]["reproLintFingerprint/v1"]
            for r in sarif["runs"][0]["results"]
            if r["ruleId"] in ("REF001", "ACL002")
        }
        assert before == after

    def test_json_payload_carries_fingerprints(self):
        snapshot = defective_snapshot()
        payload = json.loads(format_json(LintRunner().run(snapshot), snapshot))
        assert all(
            len(d["fingerprint"]) == 64 for d in payload["diagnostics"]
        )
        assert payload["objects_total"] > 0
        assert payload["objects_scanned"] > 0
