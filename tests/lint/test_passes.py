"""Unit tests for every lint pass: one positive (defect present, diagnostic
emitted) and one negative (clean config, silent) fixture each."""

from __future__ import annotations

from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    OspfProcess,
    Redistribution,
    RouteMap,
    RouteMapClause,
    StaticRoute,
)
from repro.lint import LintRunner, Severity, all_passes
from repro.net.addr import Prefix

from tests.lint.conftest import addr, two_router_snapshot


def run_codes(snapshot):
    result = LintRunner().run(snapshot)
    return {diag.code for diag in result.diagnostics}, result


def by_pass(name):
    for lint_pass in all_passes():
        if lint_pass.name == name:
            return lint_pass
    raise AssertionError(f"no pass named {name}")


class TestRegistry:
    def test_fourteen_passes_registered(self):
        assert len(all_passes()) == 14

    def test_unique_codes_and_names(self):
        passes = all_passes()
        assert len({p.name for p in passes}) == len(passes)
        assert len({p.code for p in passes}) == len(passes)


class TestUndefinedReferences:
    def test_dangling_acl_binding(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.interfaces["eth0"].acl_in = "NOPE"
        codes, _ = run_codes(snapshot)
        assert "REF001" in codes

    def test_dangling_route_map_and_interface(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.bgp = BgpProcess(asn=65001)
        r1.bgp.add_neighbor(
            BgpNeighbor("eth9", 65002, route_map_in="MISSING")
        )
        codes, _ = run_codes(snapshot)
        assert "REF002" in codes  # undefined interface
        assert "REF003" in codes  # undefined route map

    def test_dangling_static_route_interface(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.static_routes.append(
            StaticRoute(Prefix.parse("203.0.113.0/24"), "eth7")
        )
        codes, _ = run_codes(snapshot)
        assert "REF004" in codes

    def test_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.acls["OK"] = Acl("OK", [AclEntry(10, "permit")])
        r1.interfaces["eth0"].acl_in = "OK"
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("REF")}


class TestShadowedAclEntries:
    def test_shadowed_same_action_warns(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.acls["A"] = Acl(
            "A",
            [
                AclEntry(10, "permit", src=Prefix.parse("10.0.0.0/8")),
                AclEntry(20, "permit", src=Prefix.parse("10.1.0.0/16")),
            ],
        )
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "ACL001"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING

    def test_masked_opposite_action_errors(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.acls["A"] = Acl(
            "A",
            [
                AclEntry(10, "permit"),  # matches everything
                AclEntry(20, "deny", dst_port=(23, 23), proto=6),
            ],
        )
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "ACL002"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR

    def test_disjoint_entries_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.acls["A"] = Acl(
            "A",
            [
                AclEntry(10, "deny", src=Prefix.parse("10.0.0.0/8")),
                AclEntry(20, "permit", src=Prefix.parse("192.168.0.0/16")),
                AclEntry(30, "permit"),  # catch-all last is fine
            ],
        )
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("ACL")}

    def test_port_range_not_covered_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.acls["A"] = Acl(
            "A",
            [
                AclEntry(10, "deny", proto=6, dst_port=(80, 80)),
                AclEntry(20, "deny", proto=6, dst_port=(80, 443)),
            ],
        )
        codes, _ = run_codes(snapshot)
        # the wider range is NOT covered by the narrower earlier entry
        assert not {c for c in codes if c.startswith("ACL")}


class TestUnreachableRouteMapClauses:
    def test_catch_all_shadows_later_clause(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.route_maps["RM"] = RouteMap(
            "RM",
            [
                RouteMapClause(10, "permit"),  # matches every route
                RouteMapClause(20, "deny",
                               match_prefix=Prefix.parse("10.0.0.0/8")),
            ],
        )
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code.startswith("RMP")]
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR  # opposite action masked

    def test_ordered_specific_to_general_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.route_maps["RM"] = RouteMap(
            "RM",
            [
                RouteMapClause(10, "deny",
                               match_prefix=Prefix.parse("10.1.0.0/16")),
                RouteMapClause(20, "permit",
                               match_prefix=Prefix.parse("10.0.0.0/8")),
            ],
        )
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("RMP")}


class TestDuplicateIdentity:
    def test_shared_asn_warns_both_devices(self):
        snapshot, r1, r2 = two_router_snapshot()
        r1.bgp = BgpProcess(asn=65000)
        r2.bgp = BgpProcess(asn=65000)
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "DUP001"]
        assert {d.device for d in diags} == {"r1", "r2"}

    def test_duplicate_link_address_errors(self):
        snapshot, r1, r2 = two_router_snapshot()
        r2.interfaces["eth0"].address = r1.interfaces["eth0"].address
        codes, _ = run_codes(snapshot)
        assert "ADR001" in codes

    def test_same_prefix_on_two_interfaces_of_one_device(self):
        snapshot, r1, _ = two_router_snapshot()
        from repro.config.schema import InterfaceConfig

        r1.interfaces["eth1"] = InterfaceConfig(
            "eth1", prefix=r1.interfaces["eth0"].prefix, address=addr("10.0.0.3")
        )
        codes, _ = run_codes(snapshot)
        assert "ADR002" in codes

    def test_distinct_identities_clean(self):
        snapshot, r1, r2 = two_router_snapshot()
        r1.bgp = BgpProcess(asn=65001)
        r2.bgp = BgpProcess(asn=65002)
        codes, _ = run_codes(snapshot)
        assert not {
            c for c in codes if c.startswith("DUP") or c.startswith("ADR")
        }


class TestOspfAdjacency:
    def _enable_ospf(self, *devices):
        for device in devices:
            device.ospf = OspfProcess()
            for iface in device.interfaces.values():
                iface.ospf_enabled = True

    def test_half_enabled_adjacency_warns(self):
        snapshot, r1, r2 = two_router_snapshot()
        self._enable_ospf(r1)
        r2.ospf = OspfProcess()
        codes, _ = run_codes(snapshot)
        assert "OSP001" in codes

    def test_subnet_mismatch_errors(self):
        snapshot, r1, r2 = two_router_snapshot(right_prefix="10.0.9.0/30")
        self._enable_ospf(r1, r2)
        codes, _ = run_codes(snapshot)
        assert "OSP002" in codes

    def test_cost_asymmetry_warns(self):
        snapshot, r1, r2 = two_router_snapshot()
        self._enable_ospf(r1, r2)
        r1.interfaces["eth0"].ospf_cost = 10
        codes, _ = run_codes(snapshot)
        assert "OSP003" in codes

    def test_shutdown_link_not_reported(self):
        snapshot, r1, r2 = two_router_snapshot()
        self._enable_ospf(r1)
        r2.ospf = OspfProcess()
        r1.interfaces["eth0"].shutdown = True
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("OSP")}

    def test_symmetric_adjacency_clean(self):
        snapshot, r1, r2 = two_router_snapshot()
        self._enable_ospf(r1, r2)
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("OSP")}


class TestRedistributionCycles:
    def _border(self, device, asn):
        device.ospf = OspfProcess()
        device.bgp = BgpProcess(asn=asn)

    def test_single_device_mutual_is_info(self):
        snapshot, r1, _ = two_router_snapshot()
        self._border(r1, 65001)
        r1.ospf.redistribute.append(Redistribution("bgp"))
        r1.bgp.redistribute.append(Redistribution("ospf"))
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "RED002"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.INFO

    def test_multi_device_cycle_warns(self):
        snapshot, r1, r2 = two_router_snapshot()
        self._border(r1, 65001)
        self._border(r2, 65002)
        r1.bgp.redistribute.append(Redistribution("ospf"))
        r2.ospf.redistribute.append(Redistribution("bgp"))
        _, result = run_codes(snapshot)
        diags = [d for d in result.diagnostics if d.code == "RED001"]
        assert diags and all(d.severity == Severity.WARNING for d in diags)

    def test_one_way_redistribution_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        self._border(r1, 65001)
        r1.bgp.redistribute.append(Redistribution("ospf"))
        r1.ospf.redistribute.append(Redistribution("static"))
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("RED")}


class TestStaticRouteNextHops:
    def test_unresolvable_ip_next_hop_errors(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.static_routes.append(
            StaticRoute(
                Prefix.parse("203.0.113.0/24"),
                next_hop_ip=addr("172.31.0.1"),
            )
        )
        codes, _ = run_codes(snapshot)
        assert "STA001" in codes

    def test_next_hop_behind_shutdown_interface_errors(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.interfaces["eth0"].shutdown = True
        r1.static_routes.append(
            StaticRoute(
                Prefix.parse("203.0.113.0/24"), next_hop_ip=addr("10.0.0.2")
            )
        )
        codes, _ = run_codes(snapshot)
        assert "STA001" in codes

    def test_self_next_hop_warns(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.static_routes.append(
            StaticRoute(
                Prefix.parse("203.0.113.0/24"), next_hop_ip=addr("10.0.0.1")
            )
        )
        codes, _ = run_codes(snapshot)
        assert "STA002" in codes

    def test_resolvable_next_hop_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.static_routes.append(
            StaticRoute(
                Prefix.parse("203.0.113.0/24"), next_hop_ip=addr("10.0.0.2")
            )
        )
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("STA")}


class TestShutdownInterfaceConfig:
    def test_ospf_on_shutdown_interface(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.ospf = OspfProcess()
        r1.interfaces["eth0"].ospf_enabled = True
        r1.interfaces["eth0"].shutdown = True
        codes, _ = run_codes(snapshot)
        assert "SHD001" in codes

    def test_bgp_neighbor_and_static_via_shutdown(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.bgp = BgpProcess(asn=65001)
        r1.bgp.add_neighbor(BgpNeighbor("eth0", 65002))
        r1.static_routes.append(
            StaticRoute(Prefix.parse("203.0.113.0/24"), "eth0")
        )
        r1.interfaces["eth0"].shutdown = True
        codes, _ = run_codes(snapshot)
        assert "SHD003" in codes
        assert "SHD004" in codes

    def test_up_interface_clean(self):
        snapshot, r1, _ = two_router_snapshot()
        r1.ospf = OspfProcess()
        r1.interfaces["eth0"].ospf_enabled = True
        codes, _ = run_codes(snapshot)
        assert not {c for c in codes if c.startswith("SHD")}
