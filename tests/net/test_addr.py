"""Tests for IPv4 addressing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    IPV4_MAX,
    AddressError,
    IPv4Address,
    Prefix,
    format_ipv4,
    interval_to_prefixes,
    parse_ipv4,
)

addresses = st.integers(min_value=0, max_value=IPV4_MAX)
lengths = st.integers(min_value=0, max_value=32)


class TestParseFormat:
    def test_parse_dotted_quad(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) | 1

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ipv4("255.255.255.255") == IPV4_MAX

    def test_format_roundtrip_examples(self):
        for text in ("0.0.0.0", "10.1.2.3", "172.16.254.1", "255.255.255.255"):
            assert format_ipv4(parse_ipv4(text)) == text

    @given(addresses)
    def test_format_parse_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "10.0.0.0.0", "256.0.0.1", "a.b.c.d", "", "10.0.0.-1"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(IPV4_MAX + 1)
        with pytest.raises(AddressError):
            format_ipv4(-1)


class TestIPv4Address:
    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_str(self):
        assert str(IPv4Address.parse("192.168.1.1")) == "192.168.1.1"

    def test_int_conversion(self):
        assert int(IPv4Address(42)) == 42

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.network == 10 << 24
        assert p.length == 8

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/8")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            Prefix.parse(bad)

    def test_default_route(self):
        assert Prefix.default() == Prefix.parse("0.0.0.0/0")
        assert Prefix.default().num_addresses() == 1 << 32

    def test_interval(self):
        p = Prefix.parse("10.0.0.0/30")
        assert p.as_interval() == (p.network, p.network + 3)

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_address(parse_ipv4("10.0.0.255"))
        assert not p.contains_address(parse_ipv4("10.0.1.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_supernet_subnets(self):
        p = Prefix.parse("10.0.0.0/9")
        assert p.supernet() == Prefix.parse("10.0.0.0/8")
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert low == Prefix.parse("10.0.0.0/9")
        assert high == Prefix.parse("10.128.0.0/9")

    def test_supernet_of_default_fails(self):
        with pytest.raises(AddressError):
            Prefix.default().supernet()

    def test_subnets_of_host_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.2.3.4/32").subnets()

    def test_hosts_enumeration(self):
        hosts = list(Prefix.parse("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]

    def test_from_address_int_masks_host_bits(self):
        p = Prefix.from_address_int(parse_ipv4("10.0.0.7"), 30)
        assert p == Prefix.parse("10.0.0.4/30")

    @given(addresses, lengths)
    def test_from_address_always_canonical(self, value, length):
        p = Prefix.from_address_int(value, length)
        assert p.contains_address(value)
        assert p.num_addresses() == 1 << (32 - length)

    @given(addresses, lengths)
    def test_interval_matches_num_addresses(self, value, length):
        p = Prefix.from_address_int(value, length)
        lo, hi = p.as_interval()
        assert hi - lo + 1 == p.num_addresses()

    def test_ordering_is_by_network_then_length(self):
        assert Prefix.parse("10.0.0.0/8") < Prefix.parse("10.0.0.0/16")
        assert Prefix.parse("10.0.0.0/16") < Prefix.parse("11.0.0.0/8")


class TestIntervalToPrefixes:
    def test_exact_block(self):
        assert list(interval_to_prefixes(0, 7)) == [Prefix.parse("0.0.0.0/29")]

    def test_unaligned_interval(self):
        prefixes = list(interval_to_prefixes(1, 6))
        covered = sorted(
            addr for p in prefixes for addr in range(p.first(), p.last() + 1)
        )
        assert covered == list(range(1, 7))

    def test_empty_interval(self):
        assert list(interval_to_prefixes(5, 4)) == []

    def test_full_space(self):
        assert list(interval_to_prefixes(0, IPV4_MAX)) == [Prefix.default()]

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            list(interval_to_prefixes(0, IPV4_MAX + 1))

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_cover_is_exact_and_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = list(interval_to_prefixes(lo, hi))
        covered = []
        for p in prefixes:
            covered.extend(range(p.first(), p.last() + 1))
        assert sorted(covered) == list(range(lo, hi + 1))
        assert len(covered) == len(set(covered))  # disjoint
