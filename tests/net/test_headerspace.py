"""Tests for header-space boxes and predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import Prefix
from repro.net.headerspace import (
    FIELD_MAX,
    FIELDS,
    HeaderBox,
    HeaderSpaceError,
    Predicate,
    header,
)


def small_interval(bound):
    """Intervals within a small sub-domain to make overlaps likely."""
    return st.tuples(st.integers(0, bound), st.integers(0, bound)).map(
        lambda t: (min(t), max(t))
    )


boxes = st.builds(
    lambda d, s, p, dp: HeaderBox.build(
        dst_ip=d, src_ip=s, proto=p, dst_port=dp
    ),
    small_interval(50),
    small_interval(50),
    small_interval(10),
    small_interval(10),
)


class TestHeaderBox:
    def test_everything_volume(self):
        expected = 1
        for field in FIELDS:
            expected *= FIELD_MAX[field] + 1
        assert HeaderBox.everything().volume() == expected

    def test_build_constrains_named_field_only(self):
        box = HeaderBox.build(proto=(6, 6))
        assert box.interval("proto") == (6, 6)
        assert box.interval("dst_ip") == (0, FIELD_MAX["dst_ip"])

    def test_build_rejects_unknown_field(self):
        with pytest.raises(HeaderSpaceError):
            HeaderBox.build(ttl=(0, 1))

    def test_rejects_empty_interval(self):
        with pytest.raises(HeaderSpaceError):
            HeaderBox.build(proto=(7, 6))

    def test_rejects_out_of_domain(self):
        with pytest.raises(HeaderSpaceError):
            HeaderBox.build(proto=(0, 300))

    def test_from_dst_prefix(self):
        box = HeaderBox.from_dst_prefix(Prefix.parse("10.0.0.0/30"))
        lo, hi = box.interval("dst_ip")
        assert hi - lo == 3

    def test_contains(self):
        box = HeaderBox.build(dst_ip=(10, 20), proto=(6, 6))
        assert box.contains(header(15, 0, 6, 0))
        assert not box.contains(header(15, 0, 7, 0))
        assert not box.contains(header(21, 0, 6, 0))

    def test_intersect_overlapping(self):
        a = HeaderBox.build(dst_ip=(0, 10))
        b = HeaderBox.build(dst_ip=(5, 20))
        overlap = a.intersect(b)
        assert overlap is not None
        assert overlap.interval("dst_ip") == (5, 10)

    def test_intersect_disjoint(self):
        a = HeaderBox.build(dst_ip=(0, 10))
        b = HeaderBox.build(dst_ip=(11, 20))
        assert a.intersect(b) is None

    def test_subtract_disjoint_returns_self(self):
        a = HeaderBox.build(dst_ip=(0, 10))
        b = HeaderBox.build(dst_ip=(11, 20))
        assert a.subtract(b) == [a]

    def test_subtract_self_is_empty(self):
        a = HeaderBox.build(dst_ip=(0, 10))
        assert a.subtract(a) == []

    def test_subtract_pieces_are_disjoint_from_subtrahend(self):
        a = HeaderBox.build(dst_ip=(0, 10), proto=(0, 10))
        b = HeaderBox.build(dst_ip=(3, 5), proto=(2, 8))
        for piece in a.subtract(b):
            assert piece.intersect(b) is None

    @given(boxes, boxes)
    def test_subtract_volume_conservation(self, a, b):
        overlap = a.intersect(b)
        overlap_volume = overlap.volume() if overlap is not None else 0
        pieces = a.subtract(b)
        assert sum(p.volume() for p in pieces) + overlap_volume == a.volume()

    @given(boxes, boxes)
    def test_subtract_pieces_pairwise_disjoint(self, a, b):
        pieces = a.subtract(b)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1 :]:
                assert p.intersect(q) is None

    def test_is_subset(self):
        inner = HeaderBox.build(dst_ip=(2, 3))
        outer = HeaderBox.build(dst_ip=(0, 10))
        assert inner.is_subset(outer)
        assert not outer.is_subset(inner)

    def test_sample_is_inside(self):
        box = HeaderBox.build(dst_ip=(7, 9), proto=(6, 6))
        assert box.contains(box.sample())

    def test_str_mentions_constrained_fields_only(self):
        assert "proto" in str(HeaderBox.build(proto=(6, 6)))
        assert str(HeaderBox.everything()) == "Box(*)"


class TestPredicate:
    def test_empty(self):
        assert Predicate.empty().is_empty()
        assert Predicate.empty().volume() == 0

    def test_everything_covers_any_header(self):
        assert Predicate.everything().contains(header(123, 45, 6, 80))

    def test_subtract_then_volume(self):
        p = Predicate.from_dst_prefix(Prefix.parse("10.0.0.0/8"))
        q = p.subtract(Predicate.from_dst_prefix(Prefix.parse("10.1.0.0/16")))
        assert q.volume() == p.volume() - Predicate.from_dst_prefix(
            Prefix.parse("10.1.0.0/16")
        ).volume()

    def test_intersect(self):
        a = Predicate.from_box(HeaderBox.build(dst_ip=(0, 10)))
        b = Predicate.from_box(HeaderBox.build(dst_ip=(5, 20)))
        assert a.intersect(b).volume() == b.intersect(a).volume()

    def test_union_disjointness(self):
        a = Predicate.from_box(HeaderBox.build(dst_ip=(0, 10)))
        b = Predicate.from_box(HeaderBox.build(dst_ip=(5, 20)))
        union = a.union(b)
        assert union.volume() == Predicate.from_box(
            HeaderBox.build(dst_ip=(0, 20))
        ).volume()

    def test_semantic_equality(self):
        box = HeaderBox.build(dst_ip=(0, 10))
        left = Predicate.from_box(HeaderBox.build(dst_ip=(0, 5)))
        right = Predicate.from_box(HeaderBox.build(dst_ip=(6, 10)))
        assert left.union_disjoint(right).semantically_equals(
            Predicate.from_box(box)
        )

    def test_overlaps(self):
        a = Predicate.from_box(HeaderBox.build(dst_ip=(0, 10)))
        b = Predicate.from_box(HeaderBox.build(dst_ip=(10, 20)))
        c = Predicate.from_box(HeaderBox.build(dst_ip=(11, 20)))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_sample_raises_on_empty(self):
        with pytest.raises(HeaderSpaceError):
            Predicate.empty().sample()

    def test_samples_one_per_box(self):
        a = HeaderBox.build(dst_ip=(0, 1))
        b = HeaderBox.build(dst_ip=(5, 6))
        pred = Predicate.from_disjoint_boxes([a, b])
        assert len(list(pred.samples())) == 2

    def test_dst_prefixes_cover(self):
        pred = Predicate.from_dst_prefix(Prefix.parse("10.0.0.0/30"))
        assert pred.dst_prefixes() == [Prefix.parse("10.0.0.0/30")]

    @given(boxes, boxes, boxes)
    def test_subtract_intersect_partition(self, a, b, c):
        """(A - B) and (A ∩ B) partition A; adding C keeps volumes sane."""
        pa = Predicate.from_box(a)
        pb = Predicate.from_box(b)
        minus = pa.subtract(pb)
        inter = pa.intersect(pb)
        assert minus.volume() + inter.volume() == pa.volume()
        assert not minus.overlaps(pb)
