"""Tests for topology generators."""

import pytest

from repro.net.topologies import (
    LabeledTopology,
    fat_tree,
    fat_tree_expected_sizes,
    grid,
    line,
    random_connected,
    ring,
)
from repro.net.topology import TopologyError


def _is_connected(labeled: LabeledTopology) -> bool:
    topo = labeled.topology
    names = topo.node_names()
    if not names:
        return True
    adj = topo.adjacency()
    seen = {names[0]}
    frontier = [names[0]]
    while frontier:
        node = frontier.pop()
        for peer, _, _ in adj[node]:
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return len(seen) == len(names)


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 6, 8])
    def test_sizes_match_formula(self, k):
        labeled = fat_tree(k)
        nodes, links = fat_tree_expected_sizes(k)
        assert labeled.topology.num_nodes() == nodes
        assert labeled.topology.num_links() == links

    def test_paper_scale(self):
        """k=12 is the paper's topology: 180 nodes, 864 links."""
        assert fat_tree_expected_sizes(12) == (180, 864)

    def test_roles(self):
        labeled = fat_tree(4)
        roles = list(labeled.roles.values())
        assert roles.count("core") == 4
        assert roles.count("agg") == 8
        assert roles.count("edge") == 8

    def test_every_edge_has_host_prefix(self):
        labeled = fat_tree(4)
        for node in labeled.edge_nodes():
            assert labeled.host_prefixes[node]

    def test_host_prefixes_distinct(self):
        labeled = fat_tree(6)
        prefixes = [p for ps in labeled.host_prefixes.values() for p in ps]
        assert len(prefixes) == len(set(prefixes))

    def test_connected(self):
        assert _is_connected(fat_tree(4))

    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_rejects_bad_arity(self, k):
        with pytest.raises(TopologyError):
            fat_tree(k)

    def test_link_subnets_distinct(self):
        labeled = fat_tree(4)
        prefixes = [
            i.prefix for i in labeled.topology.interfaces() if i.prefix is not None
        ]
        # Each /30 is shared by exactly its two endpoints; host /24s unique.
        from collections import Counter

        counts = Counter(prefixes)
        assert all(c <= 2 for c in counts.values())


class TestOtherGenerators:
    def test_line(self):
        labeled = line(5)
        assert labeled.topology.num_nodes() == 5
        assert labeled.topology.num_links() == 4
        assert _is_connected(labeled)

    def test_line_single_node(self):
        assert line(1).topology.num_links() == 0

    def test_line_rejects_zero(self):
        with pytest.raises(TopologyError):
            line(0)

    def test_ring(self):
        labeled = ring(6)
        assert labeled.topology.num_nodes() == 6
        assert labeled.topology.num_links() == 6
        assert _is_connected(labeled)

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_grid(self):
        labeled = grid(3, 4)
        assert labeled.topology.num_nodes() == 12
        assert labeled.topology.num_links() == 3 * 3 + 2 * 4
        assert _is_connected(labeled)

    def test_grid_rejects_empty(self):
        with pytest.raises(TopologyError):
            grid(0, 3)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_connected(self, seed):
        labeled = random_connected(10, extra_links=5, seed=seed)
        assert labeled.topology.num_nodes() == 10
        assert labeled.topology.num_links() >= 9
        assert _is_connected(labeled)

    def test_random_deterministic_per_seed(self):
        a = random_connected(8, 3, seed=42)
        b = random_connected(8, 3, seed=42)
        links_a = sorted((str(l.a), str(l.b)) for l in a.topology.links())
        links_b = sorted((str(l.a), str(l.b)) for l in b.topology.links())
        assert links_a == links_b

    def test_all_generators_give_host_prefixes(self):
        for labeled in (line(3), ring(3), grid(2, 2), random_connected(4, 1, 0)):
            assert labeled.host_prefixes
