"""Tests for the topology substrate."""

import pytest

from repro.net.addr import Prefix
from repro.net.topology import InterfaceId, Topology, TopologyError


@pytest.fixture
def two_nodes():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_interface("a", "eth0", prefix=Prefix.parse("10.0.0.0/30"))
    topo.add_interface("b", "eth0", prefix=Prefix.parse("10.0.0.0/30"))
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_node("a")

    def test_duplicate_interface_rejected(self, two_nodes):
        with pytest.raises(TopologyError):
            two_nodes.add_interface("a", "eth0")

    def test_interface_on_missing_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_interface("ghost", "eth0")

    def test_link(self, two_nodes):
        link = two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        assert link.other(InterfaceId("a", "eth0")) == InterfaceId("b", "eth0")

    def test_self_link_rejected(self, two_nodes):
        with pytest.raises(TopologyError):
            two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("a", "eth0"))

    def test_double_link_rejected(self, two_nodes):
        two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        two_nodes.add_interface("a", "eth1")
        with pytest.raises(TopologyError):
            two_nodes.add_link(InterfaceId("a", "eth1"), InterfaceId("b", "eth0"))

    def test_link_requires_existing_interfaces(self, two_nodes):
        with pytest.raises(TopologyError):
            two_nodes.add_link(InterfaceId("a", "ghost"), InterfaceId("b", "eth0"))


class TestLookups:
    def test_missing_node(self):
        with pytest.raises(TopologyError):
            Topology().node("nope")

    def test_missing_interface(self, two_nodes):
        with pytest.raises(TopologyError):
            two_nodes.interface(InterfaceId("a", "nope"))

    def test_neighbor_of(self, two_nodes):
        two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        assert two_nodes.neighbor_of(InterfaceId("a", "eth0")) == InterfaceId(
            "b", "eth0"
        )

    def test_neighbor_of_unlinked_is_none(self, two_nodes):
        assert two_nodes.neighbor_of(InterfaceId("a", "eth0")) is None

    def test_link_other_rejects_foreign_interface(self, two_nodes):
        link = two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        with pytest.raises(TopologyError):
            link.other(InterfaceId("c", "eth9"))


class TestIteration:
    def test_links_iterated_once(self, two_nodes):
        two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        assert two_nodes.num_links() == 1

    def test_counts(self, two_nodes):
        assert two_nodes.num_nodes() == 2
        assert len(list(two_nodes.interfaces())) == 2

    def test_adjacency_bidirectional(self, two_nodes):
        two_nodes.add_link(InterfaceId("a", "eth0"), InterfaceId("b", "eth0"))
        adj = two_nodes.adjacency()
        assert adj["a"][0][0] == "b"
        assert adj["b"][0][0] == "a"
