"""Tests for the event journal: seqs, correlation ids, crash tolerance."""

import json

from repro.obs import (
    EVENT_COMMITTED,
    EVENT_START,
    EVENT_TYPES,
    EventJournal,
    TenantJournal,
    correlation_id,
    follow_events,
    last_sequence,
    read_events,
)


class TestCorrelationId:
    def test_batch_only(self):
        assert correlation_id("000007") == "000007"

    def test_full_thread(self):
        assert (
            correlation_id("000007", "model", 2, "loop-free")
            == "000007/model/w2/loop-free"
        )

    def test_gaps_kept_positional(self):
        assert correlation_id("000007", worker=1) == "000007/-/w1"
        assert correlation_id("000007", finding="x") == "000007/-/-/x"

    def test_trailing_placeholders_trimmed(self):
        assert correlation_id("b", "stage") == "b/stage"
        assert correlation_id() == "-"

    def test_worker_zero_is_not_a_placeholder(self):
        assert correlation_id("b", worker=0) == "b/-/w0"


class TestEventJournal:
    def test_emits_monotonic_seqs_and_schema(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            first = journal.emit(EVENT_START, cursor=0)
            second = journal.emit(EVENT_COMMITTED, batch="000001", attempts=1)
        assert first["seq"] == 1 and second["seq"] == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        for record in records:
            assert set(record) >= {"seq", "ts", "event", "cid"}
        assert records[1]["batch"] == "000001"
        assert records[1]["cid"] == "000001"

    def test_seqs_gapless_across_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for _ in range(3):
                journal.emit(EVENT_COMMITTED, batch="a")
        with EventJournal(path) as journal:
            record = journal.emit(EVENT_COMMITTED, batch="b")
        assert record["seq"] == 4
        seqs = [event["seq"] for event in read_events(path)]
        assert seqs == [1, 2, 3, 4]

    def test_torn_final_line_skipped_and_seq_reused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            journal.emit(EVENT_START)
            journal.emit(EVENT_COMMITTED, batch="a")
        with path.open("a") as handle:  # simulate a crash mid-append
            handle.write('{"seq": 3, "event": "comm')
        assert last_sequence(path) == 2
        with EventJournal(path) as journal:
            record = journal.emit(EVENT_COMMITTED, batch="b")
        assert record["seq"] == 3  # the torn seq was never durable
        assert [e["seq"] for e in read_events(path)] == [1, 2, 3]

    def test_read_events_since_filters(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for index in range(5):
                journal.emit(EVENT_COMMITTED, batch=f"{index:06d}")
        assert [e["seq"] for e in read_events(path, since=3)] == [4, 5]
        assert list(read_events(path, since=5)) == []

    def test_subscribers_see_every_emit(self, tmp_path):
        seen = []
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.subscribe(seen.append)
        journal.emit(EVENT_START)
        journal.emit(EVENT_COMMITTED, batch="x")
        journal.close()
        assert [event["event"] for event in seen] == [
            EVENT_START,
            EVENT_COMMITTED,
        ]

    def test_in_memory_journal_keeps_seqs(self):
        journal = EventJournal(None)
        journal.emit(EVENT_START)
        record = journal.emit(EVENT_COMMITTED, batch="x")
        assert record["seq"] == 2
        assert journal.events_since(0) == []  # nothing durable to replay

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_events(tmp_path / "absent.jsonl")) == []
        assert last_sequence(tmp_path / "absent.jsonl") == 0

    def test_event_types_are_distinct(self):
        assert len(set(EVENT_TYPES)) == len(EVENT_TYPES)


def collect_follow(path, actions):
    """Drive follow_events deterministically: each poll-sleep runs the
    next scripted action; the tail stops once the script is exhausted."""
    pending = list(actions)

    def scripted_sleep(_interval):
        if pending:
            pending.pop(0)()

    def should_stop():
        return not pending

    return list(
        follow_events(
            path, poll_interval=0, should_stop=should_stop, sleep=scripted_sleep
        )
    )


class TestFollowEvents:
    def test_follow_picks_up_appended_events(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.emit(EVENT_COMMITTED, batch="one")

        def append():
            journal.emit(EVENT_COMMITTED, batch="two")

        events = collect_follow(path, [append])
        journal.close()
        assert [e["batch"] for e in events] == ["one", "two"]
        assert [e["seq"] for e in events] == [1, 2]

    def test_follow_survives_rename_rotation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for index in range(3):
                journal.emit(EVENT_COMMITTED, batch=f"old{index}")

        def rotate():
            # logrotate style: rename away, recreate; the successor file
            # restarts seqs at 1, which a naive since-cursor filters out.
            path.rename(tmp_path / "j.jsonl.1")
            with EventJournal(path) as fresh:
                fresh.emit(EVENT_START)
                fresh.emit(EVENT_COMMITTED, batch="new0")

        events = collect_follow(path, [rotate])
        assert [e["seq"] for e in events] == [1, 2, 3, 1, 2]
        assert events[-1]["batch"] == "new0"

    def test_follow_survives_rotation_with_a_file_gap(self, tmp_path):
        # Between the rename and the recreate there is a poll with no
        # file at all; the tail must stay silent, not raise, and still
        # catch the successor.
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.emit(EVENT_COMMITTED, batch="old")

        def rename_away():
            path.rename(tmp_path / "j.jsonl.1")

        def recreate():
            with EventJournal(path) as fresh:
                fresh.emit(EVENT_COMMITTED, batch="new")

        events = collect_follow(path, [rename_away, recreate])
        assert [e["batch"] for e in events] == ["old", "new"]

    def test_follow_survives_in_place_truncation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for index in range(4):
                journal.emit(EVENT_COMMITTED, batch=f"old{index}")

        def truncate_and_restart():
            path.write_text("")  # same inode, size shrinks
            with EventJournal(path) as fresh:
                fresh.emit(EVENT_COMMITTED, batch="fresh")

        events = collect_follow(path, [truncate_and_restart])
        assert [e["batch"] for e in events][-1] == "fresh"
        assert events[-1]["seq"] == 1  # the restarted numbering is seen

    def test_follow_starts_on_a_not_yet_existing_file(self, tmp_path):
        path = tmp_path / "late.jsonl"

        def create():
            with EventJournal(path) as journal:
                journal.emit(EVENT_COMMITTED, batch="first")

        events = collect_follow(path, [lambda: None, create])
        assert [e["batch"] for e in events] == ["first"]


class TestTenantJournal:
    def test_emits_are_tenant_tagged(self, tmp_path):
        inner = EventJournal(tmp_path / "j.jsonl")
        tagged = TenantJournal(inner, "acme")
        record = tagged.emit(EVENT_COMMITTED, batch="000001")
        inner.close()
        assert record["tenant"] == "acme"
        assert record["cid"] == "acme:000001"
        assert tagged.seq == inner.seq == 1

    def test_two_views_share_one_seq_space(self, tmp_path):
        inner = EventJournal(tmp_path / "j.jsonl")
        first = TenantJournal(inner, "a")
        second = TenantJournal(inner, "b")
        first.emit(EVENT_COMMITTED, batch="x")
        second.emit(EVENT_COMMITTED, batch="y")
        inner.close()
        events = list(read_events(tmp_path / "j.jsonl"))
        assert [(e["seq"], e["tenant"]) for e in events] == [(1, "a"), (2, "b")]
