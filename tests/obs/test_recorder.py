"""Tests for the flight recorder: ring bounds, percentiles, dumps."""

import json

import pytest

from repro.obs import FlightRecorder, load_flight_dump, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank_on_known_set(self):
        samples = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_zero_quantile_is_minimum(self):
        assert percentile([5.0, 1.0, 9.0], 0) == 1.0


class TestFlightRecorder:
    def test_event_ring_is_bounded(self):
        recorder = FlightRecorder(event_capacity=4)
        for seq in range(1, 11):
            recorder.record_event({"seq": seq, "event": "committed"})
        events = recorder.events()
        assert [e["seq"] for e in events] == [7, 8, 9, 10]

    def test_events_since_filters_on_seq(self):
        recorder = FlightRecorder()
        for seq in (1, 2, 3):
            recorder.record_event({"seq": seq})
        assert [e["seq"] for e in recorder.events(since=2)] == [3]

    def test_histogram_summary(self):
        recorder = FlightRecorder()
        for value in (0.010, 0.020, 0.030, 0.040):
            recorder.observe_stage("model", value)
        summary = recorder.histograms()["model"]
        assert summary["count"] == 4
        assert summary["sum_seconds"] == pytest.approx(0.100)
        assert summary["mean_seconds"] == pytest.approx(0.025)
        assert summary["max_seconds"] == pytest.approx(0.040)
        assert summary["p50_seconds"] == pytest.approx(0.020)
        assert summary["p99_seconds"] == pytest.approx(0.040)

    def test_window_bounds_percentiles_but_not_totals(self):
        recorder = FlightRecorder(sample_window=3)
        for value in (1.0, 1.0, 10.0, 10.0, 10.0):
            recorder.observe_stage("batch", value)
        summary = recorder.histograms()["batch"]
        assert summary["count"] == 5  # lifetime
        assert summary["sum_seconds"] == pytest.approx(32.0)
        assert summary["window"] == 3  # percentile basis
        assert summary["p50_seconds"] == 10.0

    def test_dump_and_load_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record_event({"seq": 1, "event": "quarantined"})
        recorder.observe_stage("policy", 0.5)
        path = tmp_path / "flight.json"
        recorder.dump_to(path)
        assert recorder.dumps_written == 1
        dump = load_flight_dump(path)
        assert dump["events"][0]["event"] == "quarantined"
        assert dump["histograms"]["policy"]["count"] == 1
        # The file itself is complete, pretty JSON (atomic write).
        assert json.loads(path.read_text()) == dump

    def test_load_missing_dump_is_none(self, tmp_path):
        assert load_flight_dump(tmp_path / "absent.json") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(event_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_window=0)
