"""Journal durability: crash-mid-append tearing, in-place repair, and
the memory-only degradation path for storage faults."""

from __future__ import annotations

import json

import pytest

from repro.chaos.points import CrashPointHit, arm, disarm
from repro.cli import main
from repro.obs.journal import (
    EVENT_JOURNAL_DEGRADED,
    EventJournal,
    read_events,
    repair_journal,
)
from repro.resilience.faults import FaultPlan, FaultSpec, inject


@pytest.fixture(autouse=True)
def always_disarmed():
    disarm()
    yield
    disarm()


class TestCrashMidAppend:
    def test_armed_append_leaves_a_torn_half_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.emit("committed", batch="000000")
        arm("journal.append", mode="raise")
        with pytest.raises(CrashPointHit):
            journal.emit("committed", batch="000001")
        journal.close()
        data = path.read_bytes()
        assert not data.endswith(b"\n")
        # The durable prefix is intact; the fragment is unparseable.
        assert [e["seq"] for e in read_events(path)] == [1]

    def test_reopen_after_tear_keeps_seqs_gapless(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.emit("committed", batch="000000")
        arm("journal.append", mode="raise")
        with pytest.raises(CrashPointHit):
            journal.emit("committed", batch="000001")
        journal.close()

        reopened = EventJournal(path)
        # The torn line never became durable, so its seq is reused.
        record = reopened.emit("committed", batch="000001")
        assert record["seq"] == 2
        reopened.close()
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_repair_truncates_the_torn_fragment(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.emit("committed", batch="000000")
        arm("journal.append", mode="raise")
        with pytest.raises(CrashPointHit):
            journal.emit("committed", batch="000001")
        journal.close()

        report = repair_journal(path)
        assert report.action == "truncated"
        assert report.changed
        assert report.removed_bytes > 0
        assert report.last_seq == 1
        assert path.read_bytes().endswith(b"\n")
        # Idempotent: a second repair finds nothing.
        assert repair_journal(path).action == "none"


class TestRepairCases:
    def test_terminated_line_keeps_its_seq(self, tmp_path):
        """A complete JSON line missing only its newline was killed
        between write and terminator; its seq is already taken, so the
        line is completed, not cut."""
        path = tmp_path / "journal.jsonl"
        line1 = json.dumps({"seq": 1, "event": "committed"})
        line2 = json.dumps({"seq": 2, "event": "committed"})
        path.write_text(line1 + "\n" + line2)  # no trailing newline
        report = repair_journal(path)
        assert report.action == "terminated"
        assert report.last_seq == 2
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_clean_journal_is_untouched(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.emit("committed", batch="000000")
        journal.close()
        before = path.read_bytes()
        report = repair_journal(path)
        assert report.action == "none"
        assert not report.changed
        assert path.read_bytes() == before

    def test_missing_journal_is_reported(self, tmp_path):
        report = repair_journal(tmp_path / "ghost.jsonl")
        assert report.action == "missing"


class TestCliRepair:
    def test_repair_requires_a_journal_path(self, capsys):
        assert main(["tail", "--repair"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_journal_exits_two(self, tmp_path, capsys):
        assert main(["tail", "--journal", str(tmp_path / "ghost.jsonl"),
                     "--repair"]) == 2

    def test_clean_journal_reports_clean(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.emit("committed", batch="000000")
        journal.close()
        assert main(["tail", "--journal", str(path), "--repair"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_torn_journal_is_repaired(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"seq": 1, "event": "committed"}\n{"seq": 2, "ev')
        assert main(["tail", "--journal", str(path), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        assert path.read_bytes().endswith(b"\n")


class TestDegradation:
    def test_write_failure_degrades_to_memory(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        seen = []
        journal.subscribe(seen.append)
        journal.emit("committed", batch="000000")

        plan = FaultPlan(FaultSpec("journal_write", action="errno"))
        with inject(plan):
            journal.emit("committed", batch="000001")
        assert journal.degraded
        assert "No space left" in journal.last_write_error

        # Subscribers saw the failing event, then the degradation marker.
        assert [e["event"] for e in seen] == [
            "committed", "committed", EVENT_JOURNAL_DEGRADED,
        ]
        # Memory-only from here on: seqs keep advancing, file does not.
        record = journal.emit("committed", batch="000002")
        assert record["seq"] == 4
        durable = [e["seq"] for e in read_events(path)]
        assert durable == [1]
        journal.close()

    def test_memory_journal_never_degrades(self):
        journal = EventJournal(None)
        plan = FaultPlan(
            FaultSpec("journal_write", action="errno", repeat=0)
        )
        with inject(plan):
            journal.emit("committed", batch="000000")
        assert not journal.degraded
