"""Tests for the introspection server, over real loopback HTTP."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs import IntrospectionServer, ObsState
from repro.telemetry import MetricsRegistry, set_metrics


@pytest.fixture
def server():
    events = [
        {"seq": 1, "event": "daemon-start", "cid": "-"},
        {"seq": 2, "event": "committed", "cid": "000001"},
        {"seq": 3, "event": "quarantined", "cid": "000002"},
    ]
    state = ObsState(
        health=lambda: {"status": "serving", "cursor": 2},
        stats=lambda: {"batches_ok": 2, "histograms": {}},
        events_since=lambda since: [e for e in events if e["seq"] > since],
        metrics_text=lambda: "# TYPE repro_up gauge\nrepro_up 1\n",
    )
    live = IntrospectionServer(state).start()
    yield live
    live.stop()


def get(server, path):
    with urlopen(server.url + path, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


class TestEndpoints:
    def test_health(self, server):
        status, headers, body = get(server, "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"status": "serving", "cursor": 2}

    def test_stats(self, server):
        status, _, body = get(server, "/stats")
        assert status == 200
        assert json.loads(body)["batches_ok"] == 2

    def test_metrics_prometheus_content_type(self, server):
        status, headers, body = get(server, "/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        assert "repro_up 1" in body

    def test_events_replay_all(self, server):
        status, headers, body = get(server, "/events")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in body.splitlines()]
        assert [e["seq"] for e in events] == [1, 2, 3]

    def test_events_since_filters(self, server):
        _, _, body = get(server, "/events?since=2")
        events = [json.loads(line) for line in body.splitlines()]
        assert [e["seq"] for e in events] == [3]

    def test_events_empty_body_when_caught_up(self, server):
        _, _, body = get(server, "/events?since=99")
        assert body == ""

    def test_trailing_slash_routes(self, server):
        status, _, _ = get(server, "/health/")
        assert status == 200


class TestErrors:
    def test_unknown_endpoint_404(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get(server, "/nope")
        assert excinfo.value.code == 404

    def test_bad_since_400(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get(server, "/events?since=banana")
        assert excinfo.value.code == 400

    def test_callback_exception_is_500_not_crash(self):
        def broken():
            raise RuntimeError("boom")

        state = ObsState(
            health=broken, stats=broken, events_since=lambda since: []
        )
        server = IntrospectionServer(state).start()
        try:
            with pytest.raises(HTTPError) as excinfo:
                get(server, "/health")
            assert excinfo.value.code == 500
            # The server thread survived and still answers.
            _, _, body = get(server, "/events")
            assert body == ""
        finally:
            server.stop()


class TestLifecycle:
    def test_ephemeral_port_published(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_stop_is_idempotent(self):
        state = ObsState(
            health=dict, stats=dict, events_since=lambda since: []
        )
        server = IntrospectionServer(state).start()
        server.stop()
        server.stop()

    def test_default_metrics_text_uses_global_registry(self):
        from repro.obs.server import default_metrics_text

        registry = MetricsRegistry()
        registry.counter("repro_probe_total").inc()
        previous = set_metrics(registry)
        try:
            assert "repro_probe_total 1" in default_metrics_text()
        finally:
            set_metrics(previous)
