"""Oracle-suite fixtures: the differential harness as a fixture, so other
test packages can request ``assert_equivalent`` without importing the
harness module directly."""

from __future__ import annotations

import pytest

from tests.oracle import harness


@pytest.fixture
def assert_equivalent():
    """The three-arm differential check (serial / workers=4 / baseline)."""
    return harness.assert_equivalent


@pytest.fixture
def make_workload():
    return harness.Workload
