"""The differential oracle harness.

A *workload* is a replayable JSON file: a topology spec, a protocol, the
batch order and model mode, and a list of change batches (the serve
stream codec's tagged-JSON form).  :func:`assert_equivalent` replays one
workload through three arms and cross-checks them:

a. **serial** — the incremental pipeline exactly as shipped;
b. **parallel** — the same pipeline with ``workers=N`` (sharded model
   update + parallel policy re-check + deferred commit);
c. **baseline** — a from-scratch recomputation (the resilience layer's
   :func:`~repro.resilience.audit.audit`, which simulates the FIBs
   Batfish-style, plus a freshly built verifier for policy verdicts).

Serial vs parallel is held to *bit-identical* state — same EC ids, same
containment signatures, same port maps, same verdicts — which is
stronger than the up-to-relabeling equivalence the baseline arm can
check.  Hypothesis counterexamples are dumped through
:func:`dump_workload` into the corpus directory, where the corpus test
picks them up as regression workloads on the next run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.changes import Change
from repro.core.realconfig import RealConfig
from repro.net.topologies import (
    LabeledTopology,
    fat_tree,
    grid,
    line,
    random_connected,
    ring,
)
from repro.policy.spec import BlackholeFree, LoopFree, Policy
from repro.resilience.audit import audit
from repro.serve.stream import decode_change, encode_change
from repro.workloads import snapshot_for

CORPUS_DIR = Path(__file__).parent / "corpus"


def build_topology(spec: str) -> LabeledTopology:
    """Parse 'fat-tree:4' / 'ring:8' / 'line:6' / 'grid:3x3' / 'random:n:extra'."""
    kind, _, rest = spec.partition(":")
    if kind == "fat-tree":
        return fat_tree(int(rest))
    if kind == "ring":
        return ring(int(rest))
    if kind == "line":
        return line(int(rest))
    if kind == "grid":
        rows, _, cols = rest.partition("x")
        return grid(int(rows), int(cols))
    if kind == "random":
        n, _, extra = rest.partition(":")
        return random_connected(int(n), int(extra or 0), seed=0)
    raise ValueError(f"unknown topology spec {spec!r}")


@dataclass
class Workload:
    """One replayable oracle workload."""

    name: str
    topology: str
    protocol: str = "ospf"
    order: str = "insertion-first"
    mode: str = "ecmp"
    batches: List[List[Change]] = field(default_factory=list)

    def labeled(self) -> LabeledTopology:
        return build_topology(self.topology)

    def snapshot(self):
        return snapshot_for(self.labeled(), self.protocol)

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "protocol": self.protocol,
            "order": self.order,
            "mode": self.mode,
            "batches": [
                [encode_change(change) for change in batch]
                for batch in self.batches
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "Workload":
        return cls(
            name=payload["name"],
            topology=payload["topology"],
            protocol=payload.get("protocol", "ospf"),
            order=payload.get("order", "insertion-first"),
            mode=payload.get("mode", "ecmp"),
            batches=[
                [decode_change(raw) for raw in batch]
                for batch in payload["batches"]
            ],
        )


def load_workload(path: Path) -> Workload:
    return Workload.from_json(json.loads(Path(path).read_text()))


def dump_workload(workload: Workload, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(workload.to_json(), indent=1, sort_keys=True))
    return path


def corpus_paths() -> List[Path]:
    return sorted(CORPUS_DIR.glob("*.json"))


def default_policies() -> List[Policy]:
    return [LoopFree("loop-free"), BlackholeFree("blackhole-free")]


def fingerprint(verifier: RealConfig) -> Tuple:
    """The complete observable state of one verifier arm: EC id sequence,
    containment signatures, per-device port maps, and policy verdicts."""
    model = verifier.model
    ids = tuple(model.ecs.ec_ids())
    sigs = {ec: frozenset(model.ecs.containers_of(ec)) for ec in ids}
    ports = {
        name: tuple(
            sorted((ec, model.device(name).ports.get(ec)) for ec in ids)
        )
        for name in model.device_names()
    }
    verdicts = tuple(
        sorted(
            (status.policy.name, status.holds)
            for status in verifier.policy_statuses()
        )
    )
    return ids, sigs, ports, verdicts


def _verdicts(verifier: RealConfig) -> Tuple:
    return tuple(
        sorted(
            (status.policy.name, status.holds)
            for status in verifier.policy_statuses()
        )
    )


def assert_equivalent(
    workload: Workload,
    workers: int = 4,
    backend: str = "auto",
    policies: Optional[Sequence[Policy]] = None,
) -> None:
    """Replay ``workload`` through the three arms and cross-check them.

    Raises AssertionError naming the workload and the first batch index
    where an arm diverged.
    """
    snapshot = workload.snapshot()
    serial = RealConfig(
        snapshot,
        policies=list(policies) if policies is not None else default_policies(),
        update_order=workload.order,
        model_mode=workload.mode,
    )
    parallel = RealConfig(
        snapshot,
        policies=list(policies) if policies is not None else default_policies(),
        update_order=workload.order,
        model_mode=workload.mode,
        workers=workers,
        parallel_backend=backend,
    )
    label = f"workload {workload.name!r}"
    try:
        assert fingerprint(serial) == fingerprint(parallel), (
            f"{label}: arms diverged on the initial snapshot"
        )
        for index, changes in enumerate(workload.batches):
            where = f"{label}, batch {index}"
            d_serial = serial.apply_changes(list(changes))
            d_parallel = parallel.apply_changes(list(changes))
            assert fingerprint(serial) == fingerprint(parallel), (
                f"{where}: serial and parallel state diverged"
            )
            assert d_serial.ok == d_parallel.ok, f"{where}: delta.ok differs"
            assert sorted(
                s.policy.name for s in d_serial.newly_violated
            ) == sorted(s.policy.name for s in d_parallel.newly_violated), (
                f"{where}: newly_violated differs"
            )
            assert sorted(
                s.policy.name for s in d_serial.newly_satisfied
            ) == sorted(s.policy.name for s in d_parallel.newly_satisfied), (
                f"{where}: newly_satisfied differs"
            )
            assert (
                d_serial.batch.num_inserts == d_parallel.batch.num_inserts
                and d_serial.batch.num_deletes == d_parallel.batch.num_deletes
            ), f"{where}: batch update counts differ"
            assert (
                d_serial.batch.ec_splits == d_parallel.batch.ec_splits
                and d_serial.batch.ec_merges == d_parallel.batch.ec_merges
            ), f"{where}: split/merge counts differ"
            # The parallel batch reports net moves; reduce the serial batch
            # to its net effect and compare endpoints.
            net_serial = d_serial.batch.net_moves(serial.model)
            net_parallel = {
                (m.device, m.ec): (m.old_port, m.new_port)
                for m in d_parallel.batch.moves
            }
            assert set(net_serial) == set(net_parallel), (
                f"{where}: net move key sets differ"
            )
            for key in net_serial:
                assert net_serial[key][1] == net_parallel[key][1], (
                    f"{where}: net move {key} lands on different ports"
                )
        # Baseline arm 1: from-scratch FIB simulation against both arms'
        # incremental state (ports/verdicts too in ecmp mode — priority
        # mode FIBs only, where a fresh build legitimately relabels).
        report = audit(serial)
        assert report.ok, f"{label}: serial arm drifted from baseline: {report.summary()}"
        report = audit(parallel)
        assert report.ok, f"{label}: parallel arm drifted from baseline: {report.summary()}"
        # Baseline arm 2 (ecmp only): a verifier built from scratch at the
        # final snapshot must agree on every policy verdict.
        if workload.mode == "ecmp":
            fresh = RealConfig(
                serial.snapshot,
                policies=list(policies)
                if policies is not None
                else default_policies(),
                update_order=workload.order,
                model_mode=workload.mode,
            )
            assert _verdicts(fresh) == _verdicts(serial), (
                f"{label}: incremental verdicts differ from a from-scratch build"
            )
    finally:
        parallel.close()
