"""Regenerate the committed oracle corpus (``python tests/oracle/make_corpus.py``).

Each workload is validated through the full differential harness before
it is written, so a freshly generated corpus is green by construction.
The corpus covers every change generator on the paper's two protocol
families, the three batch orders, both model modes (including the
Table-3 order-sensitive pairs: the same change set under insertion-first
and deletion-first in priority mode), invert pairs that force EC merges,
and degenerate batches.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from oracle.harness import (  # noqa: E402
    CORPUS_DIR,
    Workload,
    assert_equivalent,
    dump_workload,
)

from repro.config.changes import Change, apply_changes  # noqa: E402
from repro.workloads.changegen import (  # noqa: E402
    acl_changes,
    lc_changes,
    link_failures,
    lp_changes,
    stream_batches,
)


def _single(name, topo, proto, gen, count, seed, order="insertion-first",
            mode="ecmp") -> Workload:
    labeled_gen = gen  # resolved against the workload's own topology below
    workload = Workload(name=name, topology=topo, protocol=proto,
                        order=order, mode=mode)
    changes = labeled_gen(workload.labeled(), count=count, seed=seed)
    workload.batches = [list(changes)]
    return workload


def _stream(name, topo, proto, count, seed, order="insertion-first",
            mode="ecmp") -> Workload:
    workload = Workload(name=name, topology=topo, protocol=proto,
                        order=order, mode=mode)
    workload.batches = [
        list(batch)
        for batch in stream_batches(
            workload.labeled(), protocol=proto, count=count, seed=seed
        )
    ]
    return workload


def _invert_pair(name, topo, proto, gen, count, seed, order="insertion-first",
                 mode="ecmp") -> Workload:
    """One batch of changes followed by the batch of their inverses —
    the second batch drives the EC-merge path hard."""
    workload = Workload(name=name, topology=topo, protocol=proto,
                        order=order, mode=mode)
    forward: List[Change] = list(
        gen(workload.labeled(), count=count, seed=seed)
    )
    # Each inverse is computed against the snapshot state just before its
    # change, then the whole list is replayed in reverse.
    snap = workload.snapshot()
    inverses: List[Change] = []
    for change in forward:
        inverses.append(change.invert(snap))
        snap, _ = apply_changes(snap, [change])
    workload.batches = [forward, list(reversed(inverses))]
    return workload


def build_corpus() -> List[Workload]:
    workloads = [
        # One workload per generator on each protocol family (ecmp).
        _single("ft4-ospf-linkfail", "fat-tree:4", "ospf", link_failures, 3, 1),
        _single("ft4-ospf-lc", "fat-tree:4", "ospf", lc_changes, 3, 2),
        _single("ft4-ospf-acl", "fat-tree:4", "ospf", acl_changes, 2, 3),
        _single("ring8-bgp-linkfail", "ring:8", "bgp", link_failures, 2, 5),
        _single("ring8-bgp-lp", "ring:8", "bgp", lp_changes, 3, 6),
        _single("ring8-bgp-acl", "ring:8", "bgp", acl_changes, 2, 7),
        # Multi-batch serve-style streams under grouped ordering.
        _stream("ft4-ospf-stream-grouped", "fat-tree:4", "ospf", 4, 4,
                order="grouped"),
        _stream("ring8-bgp-stream-grouped", "ring:8", "bgp", 4, 8,
                order="grouped"),
        # Table-3 order-sensitive pairs: the same change set replayed
        # under insertion-first and deletion-first in priority mode.
        _single("ft4-ospf-lc-priority-ins", "fat-tree:4", "ospf",
                lc_changes, 3, 9, order="insertion-first", mode="priority"),
        _single("ft4-ospf-lc-priority-del", "fat-tree:4", "ospf",
                lc_changes, 3, 9, order="deletion-first", mode="priority"),
        _single("ring8-bgp-lp-priority-ins", "ring:8", "bgp",
                lp_changes, 3, 10, order="insertion-first", mode="priority"),
        _single("ring8-bgp-lp-priority-del", "ring:8", "bgp",
                lp_changes, 3, 10, order="deletion-first", mode="priority"),
        # Other topology shapes.
        _single("line6-ospf-linkfail", "line:6", "ospf", link_failures, 2, 11),
        _stream("grid3x3-ospf-stream", "grid:3x3", "ospf", 3, 12),
        _single("random10-ospf-lc", "random:10:3", "ospf", lc_changes, 3, 13),
        # Invert pairs: the merge-heavy path.
        _invert_pair("ft4-ospf-invert", "fat-tree:4", "ospf",
                     link_failures, 2, 14),
        _invert_pair("ring8-bgp-invert", "ring:8", "bgp", lp_changes, 2, 15),
        # More order/mode coverage.
        _stream("ft4-ospf-stream-priority-grouped", "fat-tree:4", "ospf",
                3, 16, order="grouped", mode="priority"),
        _single("ring8-bgp-linkfail-priority-del", "ring:8", "bgp",
                link_failures, 2, 17, order="deletion-first", mode="priority"),
        _single("ft4-ospf-acl-del", "fat-tree:4", "ospf", acl_changes, 2, 18,
                order="deletion-first"),
    ]
    # Degenerate batches: empty and single no-net-effect flap pair.
    empty = Workload(name="ft4-ospf-empty-batch", topology="fat-tree:4",
                     protocol="ospf")
    empty.batches = [[]]
    workloads.append(empty)
    return workloads


def main() -> int:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for workload in build_corpus():
        assert_equivalent(workload)
        path = dump_workload(workload, CORPUS_DIR / f"{workload.name}.json")
        print(f"wrote {path} ({len(workload.batches)} batch(es))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
