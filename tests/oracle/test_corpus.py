"""Replay every committed corpus workload through the differential oracle.

Each workload runs through three arms — serial incremental, ``workers=4``
parallel, and a from-scratch baseline — and must agree on EC partition,
port maps, policy verdicts, and simulated FIBs.  Shrunk Hypothesis
counterexamples land in the same corpus directory, so a failure found by
the property test automatically becomes a regression workload here.
"""

from __future__ import annotations

import pytest

from tests.oracle.harness import (
    assert_equivalent,
    corpus_paths,
    load_workload,
)

_PATHS = corpus_paths()


def test_corpus_is_populated():
    # ~20 committed regression workloads; a glob bug or a lost directory
    # must not silently skip the whole suite.
    assert len(_PATHS) >= 20


@pytest.mark.parametrize("path", _PATHS, ids=lambda p: p.stem)
def test_corpus_workload(path):
    assert_equivalent(load_workload(path))


def test_table3_pairs_present():
    """The Table-3 order-sensitive cases: the same change set must be
    covered under both insertion-first and deletion-first in priority
    mode, on both protocol families."""
    by_name = {p.stem: p for p in _PATHS}
    for family in ("ft4-ospf-lc-priority", "ring8-bgp-lp-priority"):
        assert f"{family}-ins" in by_name
        assert f"{family}-del" in by_name
    ins = load_workload(by_name["ft4-ospf-lc-priority-ins"])
    del_ = load_workload(by_name["ft4-ospf-lc-priority-del"])
    assert ins.order == "insertion-first" and del_.order == "deletion-first"
    assert [c.describe() for batch in ins.batches for c in batch] == [
        c.describe() for batch in del_.batches for c in batch
    ]
