"""Hypothesis property: the parallel staged-batch merge equals serial,
invariant to shard count and shard assignment order.

The property drives the model layer directly (inline pool backend — the
identical replay/shard/merge code paths as the forked pool, minus
process overhead) so hundreds of examples run in seconds.  Shard count K
ranges over {1, 2, 3, 7} (K=1 is the degenerate single-shard plan) and
``shard_seed`` permutes the assignment, so a passing run proves the
merged result depends only on the batch — never on how the work was
dealt out.

Shrunk counterexamples are dumped as replayable workload JSON into the
corpus directory, where ``test_corpus`` replays them as regressions.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.changes import apply_changes
from repro.core.generator import IncrementalDataPlaneGenerator
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.parallel import ParallelExecutor, forwarding_devices, stage_batch
from repro.policy.paths import analyze_ec
from repro.workloads import snapshot_for
from repro.workloads.changegen import lc_changes, link_failures, lp_changes

from tests.oracle.harness import CORPUS_DIR, Workload, build_topology, dump_workload

#: (topology spec, protocol) -> applicable change generators.
_CONFIGS = [
    ("line:5", "ospf"),
    ("ring:6", "ospf"),
    ("ring:6", "bgp"),
]
_GENERATORS = {
    "ospf": [link_failures, lc_changes],
    "bgp": [link_failures, lp_changes],
}
_ORDERS = ("insertion-first", "deletion-first", "grouped")


@lru_cache(maxsize=None)
def _base(topo_spec: str, protocol: str):
    """Converged base state, built once per (topology, protocol): the
    snapshot, the generator's captured state, and the base rule updates."""
    labeled = build_topology(topo_spec)
    snapshot = snapshot_for(labeled, protocol)
    generator = IncrementalDataPlaneGenerator()
    base_updates = generator.update_to(snapshot)
    return labeled, snapshot, generator.capture_state(), base_updates


def _fresh_model(topo_spec, protocol, order, mode):
    labeled, snapshot, gen_state, base_updates = _base(topo_spec, protocol)
    model = NetworkModel(snapshot.topology, mode=mode)
    updater = BatchUpdater(model, order=order)
    updater.apply(base_updates)
    return model, updater


def _change_updates(topo_spec, protocol, changes):
    """Rule updates for one change batch, from a generator restored to the
    converged base state."""
    _, snapshot, gen_state, _ = _base(topo_spec, protocol)
    new_snapshot, _ = apply_changes(snapshot, changes)
    generator = IncrementalDataPlaneGenerator()
    generator.restore_state(gen_state)
    return generator.update_to(new_snapshot)


def _fingerprint(model: NetworkModel):
    ids = tuple(model.ecs.ec_ids())
    sigs = {ec: frozenset(model.ecs.containers_of(ec)) for ec in ids}
    ports = {
        name: tuple(
            sorted((ec, model.device(name).ports.get(ec)) for ec in ids)
        )
        for name in model.device_names()
    }
    return ids, sigs, ports


@st.composite
def _cases(draw):
    config_index = draw(st.integers(min_value=0, max_value=len(_CONFIGS) - 1))
    topo_spec, protocol = _CONFIGS[config_index]
    generators = _GENERATORS[protocol]
    gen = generators[draw(st.integers(min_value=0, max_value=len(generators) - 1))]
    count = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=500))
    order = _ORDERS[draw(st.integers(min_value=0, max_value=2))]
    mode = ("ecmp", "priority")[draw(st.integers(min_value=0, max_value=1))]
    k = draw(st.sampled_from([1, 2, 3, 7]))
    shard_seed = draw(st.integers(min_value=0, max_value=5))
    labeled, _, _, _ = _base(topo_spec, protocol)
    changes = gen(labeled, count=count, seed=seed)
    return topo_spec, protocol, changes, order, mode, k, shard_seed


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(case=_cases())
def test_parallel_merge_equals_serial(case):
    topo_spec, protocol, changes, order, mode, k, shard_seed = case
    updates = _change_updates(topo_spec, protocol, changes)

    serial_model, serial_updater = _fresh_model(topo_spec, protocol, order, mode)
    serial_updater.apply(updates)

    parallel_model, _ = _fresh_model(topo_spec, protocol, order, mode)
    try:
        if k == 1:
            plan = stage_batch(parallel_model, updates, order)
            for node in forwarding_devices(updates):
                parallel_model.reclassify_net(node, plan.affected.get(node, ()))
        else:
            executor = ParallelExecutor(
                parallel_model, k, backend="inline", shard_seed=shard_seed
            )
            executor.start()
            round_one = executor.run_batch(updates, order)
            analyses = executor.run_analyses(round_one)
            executor.commit_batch(updates, order, round_one)
            executor.shutdown()
            # Round-two analyses must equal fresh analysis of the
            # committed model (the policy re-check consumes them as-is).
            for ec, analysis in analyses.items():
                assert analysis == analyze_ec(parallel_model, ec)
        assert _fingerprint(serial_model) == _fingerprint(parallel_model)
    except AssertionError:
        dump_workload(
            Workload(
                name="shrunk-property",
                topology=topo_spec,
                protocol=protocol,
                order=order,
                mode=mode,
                batches=[list(changes)],
            ),
            CORPUS_DIR / "shrunk-property.json",
        )
        raise
