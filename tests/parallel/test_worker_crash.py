"""Worker-pool crash recovery: a fork worker dying mid-stream must not
fail the verification — the executor respawns the pool (reseeding from
the untouched main model), and a second death degrades to the inline
backend.  Checksum divergence, by contrast, is never retried."""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.realconfig import RealConfig
from repro.net.topologies import ring
from repro.parallel.executor import ParallelExecutor, PoolDriftError
from repro.parallel.pool import PoolError, fork_available
from repro.workloads import bgp_snapshot, link_failures

from tests.resilience.helpers import fingerprint, make_policies

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def snapshot():
    return bgp_snapshot(ring(4))


@pytest.fixture(scope="module")
def changes(snapshot):
    changes = link_failures(snapshot, seed=5)
    assert len(changes) >= 2
    return changes


@pytest.fixture(scope="module")
def serial_outcome(snapshot, changes):
    """What a fault-free serial run produces, for equivalence checks."""
    verifier = RealConfig(snapshot, policies=make_policies())
    for change in changes:
        verifier.apply_changes([change])
    return fingerprint(verifier)


@needs_fork
@pytest.mark.slow
class TestWorkerDeath:
    def test_sigkilled_worker_is_respawned_mid_stream(
        self, snapshot, changes, serial_outcome
    ):
        verifier = RealConfig(
            snapshot,
            policies=make_policies(),
            workers=2,
            parallel_backend="fork",
        )
        try:
            verifier.apply_changes([changes[0]])
            victim = verifier._executor._pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            assert not victim.is_alive()
            for change in changes[1:]:
                verifier.apply_changes([change])
            # Still on the fork backend: the pool was respawned, not
            # abandoned.
            assert verifier._executor.backend == "fork"
            assert fingerprint(verifier) == serial_outcome
        finally:
            verifier.close()

    def test_repeated_death_degrades_to_inline(
        self, snapshot, changes, serial_outcome, monkeypatch
    ):
        verifier = RealConfig(
            snapshot,
            policies=make_policies(),
            workers=2,
            parallel_backend="fork",
        )
        try:
            executor = verifier._executor
            real_run_batch = executor.run_batch
            deaths = {"left": 2}

            def dying_run_batch(*args, **kwargs):
                if deaths["left"] > 0 and executor.backend == "fork":
                    deaths["left"] -= 1
                    executor._teardown()
                    raise PoolError("worker died (injected)")
                return real_run_batch(*args, **kwargs)

            monkeypatch.setattr(executor, "run_batch", dying_run_batch)
            for change in changes:
                verifier.apply_changes([change])
            assert deaths["left"] == 0
            assert executor.backend == "inline"
            assert fingerprint(verifier) == serial_outcome
        finally:
            verifier.close()


class TestRecoveryLadder:
    """run_rounds retry policy, unit-level (no real forks needed)."""

    @pytest.fixture
    def executor(self, snapshot):
        verifier = RealConfig(snapshot, policies=make_policies())
        executor = ParallelExecutor(
            verifier.model, workers=2, backend="inline"
        )
        yield executor
        executor.shutdown()
        verifier.close()

    def test_drift_is_never_retried(self, executor, monkeypatch):
        calls = {"count": 0}

        def diverging(*args, **kwargs):
            calls["count"] += 1
            raise PoolDriftError("checksum divergence (injected)")

        monkeypatch.setattr(executor, "run_batch", diverging)
        with pytest.raises(PoolDriftError):
            executor.run_rounds([], "+,-")
        assert calls["count"] == 1

    def test_inline_backend_exhausts_after_one_raise(
        self, executor, monkeypatch
    ):
        """Already-inline executors have no further rung to fall to."""
        calls = {"count": 0}

        def dying(*args, **kwargs):
            calls["count"] += 1
            raise PoolError("worker died (injected)")

        monkeypatch.setattr(executor, "run_batch", dying)
        with pytest.raises(PoolError):
            executor.run_rounds([], "+,-")
        assert calls["count"] == 1

    def test_fork_backend_respawns_then_degrades(self, snapshot, monkeypatch):
        verifier = RealConfig(snapshot, policies=make_policies())
        executor = ParallelExecutor(
            verifier.model, workers=2, backend="fork"
        )
        attempts = []

        def dying(*args, **kwargs):
            attempts.append(executor.backend)
            raise PoolError("worker died (injected)")

        monkeypatch.setattr(executor, "run_batch", dying)
        try:
            with pytest.raises(PoolError):
                executor.run_rounds([], "+,-")
            # fork (respawn) -> fork (degrade decision) -> inline -> give up
            assert attempts == ["fork", "fork", "inline"]
        finally:
            executor.shutdown()
            verifier.close()
