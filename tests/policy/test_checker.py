"""Tests for the incremental policy checker: maps, incrementality oracle,
and policy status transitions."""

import pytest

from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import FilterRule, ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import line, ring
from repro.policy.checker import IncrementalChecker, PolicyError
from repro.policy.spec import (
    BlackholeFree,
    LoopFree,
    Reachability,
    Waypoint,
    isolation,
)
from repro.routing.types import ACCEPT

DST = Prefix.parse("172.16.2.0/24")
DST_BOX = HeaderBox.from_dst_prefix(DST)


def chain_updates():
    return [
        RuleUpdate(1, ForwardingRule("r0", DST, "eth1")),
        RuleUpdate(1, ForwardingRule("r1", DST, "eth1")),
        RuleUpdate(1, ForwardingRule("r2", DST, ACCEPT)),
    ]


def build(policies=(), topo=None):
    model = NetworkModel((topo or line(3)).topology)
    checker = IncrementalChecker(model, ["r0", "r1", "r2"], policies)
    updater = BatchUpdater(model)
    return model, checker, updater


class TestPairMap:
    def test_delivered_ecs(self):
        model, checker, updater = build()
        batch = updater.apply(chain_updates())
        checker.check_batch(batch)
        assert checker.delivered_ecs("r0", "r2")
        assert not checker.delivered_ecs("r2", "r0")

    def test_pair_map_updates_on_withdraw(self):
        model, checker, updater = build()
        checker.check_batch(updater.apply(chain_updates()))
        batch = updater.apply(
            [RuleUpdate(-1, ForwardingRule("r1", DST, "eth1"))]
        )
        report = checker.check_batch(batch)
        assert not checker.delivered_ecs("r0", "r2")
        assert ("r0", "r2") in report.affected_pairs

    def test_total_pairs(self):
        _, checker, _ = build()
        assert checker.total_pairs() == 6  # 3 endpoints, ordered

    def test_endpoints_limit_tracking(self):
        model = NetworkModel(line(3).topology)
        checker = IncrementalChecker(model, ["r0", "r2"])  # r1 not endpoint
        updater = BatchUpdater(model)
        report = checker.check_batch(updater.apply(chain_updates()))
        assert ("r1", "r2") not in report.affected_pairs
        assert ("r0", "r2") in report.affected_pairs


class TestIncrementalOracle:
    """Incremental checking must equal a full re-analysis."""

    def test_pair_map_matches_full_recheck(self):
        import random

        rng = random.Random(3)
        model, checker, updater = build(topo=ring(4))
        live = []
        prefixes = [Prefix.parse(f"172.16.{i}.0/24") for i in range(4)]
        for step in range(40):
            node = f"r{rng.randrange(4)}"
            prefix = rng.choice(prefixes)
            iface = rng.choice(["eth0", "eth1", ACCEPT])
            rule = ForwardingRule(node, prefix, iface)
            if rule in live:
                batch = updater.apply([RuleUpdate(-1, rule)])
                live.remove(rule)
            else:
                batch = updater.apply([RuleUpdate(1, rule)])
                live.append(rule)
            checker.check_batch(batch)
            # Oracle: a fresh checker over the same model.
            fresh = IncrementalChecker(model, checker.endpoints)
            assert (
                checker.delivered_pair_map() == fresh.delivered_pair_map()
            ), f"divergence at step {step}"


class TestReachabilityPolicies:
    def test_holds_then_violated_then_restored(self):
        policy = Reachability("p", src="r0", dst="r2", match=DST_BOX)
        model, checker, updater = build()
        checker.check_batch(updater.apply(chain_updates()))
        checker.add_policy(policy)
        assert checker.status("p").holds

        batch = updater.apply([RuleUpdate(-1, ForwardingRule("r1", DST, "eth1"))])
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_violated] == ["p"]

        batch = updater.apply([RuleUpdate(1, ForwardingRule("r1", DST, "eth1"))])
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_satisfied] == ["p"]

    def test_isolation_policy(self):
        policy = isolation("iso", "r0", "r2", DST_BOX)
        model, checker, updater = build()
        checker.add_policy(policy)
        assert checker.status("iso").holds
        report = checker.check_batch(updater.apply(chain_updates()))
        assert [s.policy.name for s in report.newly_violated] == ["iso"]
        assert "leaking" in report.newly_violated[0].detail

    def test_policy_match_registers_ec(self):
        model, checker, _ = build()
        before = model.ecs.num_ecs()
        checker.add_policy(Reachability("p", src="r0", dst="r2", match=DST_BOX))
        assert model.ecs.num_ecs() == before + 1
        checker.remove_policy("p")
        assert model.ecs.num_ecs() == before

    def test_duplicate_name_rejected(self):
        model, checker, _ = build()
        checker.add_policy(Reachability("p", src="r0", dst="r2", match=DST_BOX))
        with pytest.raises(PolicyError):
            checker.add_policy(Reachability("p", src="r0", dst="r1"))

    def test_remove_unknown_rejected(self):
        _, checker, _ = build()
        with pytest.raises(PolicyError):
            checker.remove_policy("ghost")


class TestInvariantPolicies:
    def test_loop_free_violated(self):
        model, checker, updater = build(policies=[LoopFree("lf")])
        batch = updater.apply(
            [
                RuleUpdate(1, ForwardingRule("r0", DST, "eth1")),
                RuleUpdate(1, ForwardingRule("r1", DST, "eth0")),
            ]
        )
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_violated] == ["lf"]

    def test_blackhole_free_violated_and_repaired(self):
        model, checker, updater = build(policies=[BlackholeFree("bf")])
        batch = updater.apply([RuleUpdate(1, ForwardingRule("r0", DST, "eth1"))])
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_violated] == ["bf"]
        batch = updater.apply(
            [
                RuleUpdate(1, ForwardingRule("r1", DST, "eth1")),
                RuleUpdate(1, ForwardingRule("r2", DST, ACCEPT)),
            ]
        )
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_satisfied] == ["bf"]


class TestWaypointPolicies:
    def test_waypoint_holds_on_chain(self):
        policy = Waypoint("wp", src="r0", dst="r2", waypoint="r1", match=DST_BOX)
        model, checker, updater = build()
        checker.check_batch(updater.apply(chain_updates()))
        checker.add_policy(policy)
        assert checker.status("wp").holds

    def test_waypoint_violated_by_bypass(self):
        topo = ring(4)
        model = NetworkModel(topo.topology)
        checker = IncrementalChecker(model, ["r0", "r1", "r2", "r3"])
        updater = BatchUpdater(model)
        # Two disjoint paths r0->r2: via r1 and via r3.
        updates = [
            RuleUpdate(1, ForwardingRule("r0", DST, "eth1")),  # to r1
            RuleUpdate(1, ForwardingRule("r0", DST, "eth0")),  # to r3
            RuleUpdate(1, ForwardingRule("r1", DST, "eth1")),
            RuleUpdate(1, ForwardingRule("r3", DST, "eth0")),
            RuleUpdate(1, ForwardingRule("r2", DST, ACCEPT)),
        ]
        checker.check_batch(updater.apply(updates))
        checker.add_policy(
            Waypoint("wp", src="r0", dst="r2", waypoint="r1", match=DST_BOX)
        )
        status = checker.status("wp")
        assert not status.holds
        assert "bypassing r1" in status.detail

    def test_waypoint_restored_after_fix(self):
        topo = ring(4)
        model = NetworkModel(topo.topology)
        checker = IncrementalChecker(model, ["r0", "r1", "r2", "r3"])
        updater = BatchUpdater(model)
        updates = [
            RuleUpdate(1, ForwardingRule("r0", DST, "eth1")),
            RuleUpdate(1, ForwardingRule("r0", DST, "eth0")),
            RuleUpdate(1, ForwardingRule("r1", DST, "eth1")),
            RuleUpdate(1, ForwardingRule("r3", DST, "eth0")),
            RuleUpdate(1, ForwardingRule("r2", DST, ACCEPT)),
        ]
        checker.check_batch(updater.apply(updates))
        checker.add_policy(
            Waypoint("wp", src="r0", dst="r2", waypoint="r1", match=DST_BOX)
        )
        # Remove the bypass branch.
        batch = updater.apply([RuleUpdate(-1, ForwardingRule("r0", DST, "eth0"))])
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_satisfied] == ["wp"]


class TestFilterInteraction:
    def test_acl_violation_detected(self):
        policy = Reachability("p", src="r0", dst="r2", match=DST_BOX)
        model, checker, updater = build()
        checker.check_batch(updater.apply(chain_updates()))
        checker.add_policy(policy)
        deny = FilterRule("r1", "eth0", "in", 10, "deny", DST_BOX)
        report = checker.check_batch(updater.apply([RuleUpdate(1, deny)]))
        assert [s.policy.name for s in report.newly_violated] == ["p"]

    def test_scoped_acl_keeps_other_traffic(self):
        http_box = HeaderBox.build(
            dst_ip=DST.as_interval(), proto=(6, 6), dst_port=(80, 80)
        )
        any_policy = Reachability("all", src="r0", dst="r2", match=DST_BOX)
        http_policy = Reachability("http", src="r0", dst="r2", match=http_box)
        model, checker, updater = build()
        checker.check_batch(updater.apply(chain_updates()))
        checker.add_policy(any_policy)
        checker.add_policy(http_policy)
        deny = FilterRule("r1", "eth0", "in", 10, "deny", http_box)
        permit = FilterRule("r1", "eth0", "in", 20, "permit", HeaderBox.everything())
        report = checker.check_batch(
            updater.apply([RuleUpdate(1, deny), RuleUpdate(1, permit)])
        )
        violated = {s.policy.name for s in report.newly_violated}
        assert violated == {"all", "http"}
        # Non-HTTP portion of DST still delivered: a policy scoped to SSH
        # traffic would still hold.
        ssh_box = HeaderBox.build(
            dst_ip=DST.as_interval(), proto=(6, 6), dst_port=(22, 22)
        )
        checker.add_policy(Reachability("ssh", src="r0", dst="r2", match=ssh_box))
        assert checker.status("ssh").holds


class TestReports:
    def test_summary_format(self):
        model, checker, updater = build()
        report = checker.check_batch(updater.apply(chain_updates()))
        text = report.summary()
        assert "pairs affected" in text
        assert "newly violated" in text

    def test_statuses_listing(self):
        model, checker, _ = build(
            policies=[LoopFree("lf"), BlackholeFree("bf")]
        )
        names = [s.policy.name for s in checker.statuses()]
        assert names == ["bf", "lf"]
