"""Checker edge cases: policy lifecycle vs EC splits/merges, vacuous
policies, and status stability across no-op batches."""


from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import line
from repro.policy.checker import IncrementalChecker
from repro.policy.spec import Reachability, isolation
from repro.routing.types import ACCEPT

WIDE = Prefix.parse("172.16.0.0/16")
NARROW = Prefix.parse("172.16.2.0/24")


def build():
    model = NetworkModel(line(3).topology)
    updater = BatchUpdater(model)
    checker = IncrementalChecker(model, ["r0", "r1", "r2"])
    return model, updater, checker


def chain(prefix):
    return [
        RuleUpdate(1, ForwardingRule("r0", prefix, "eth1")),
        RuleUpdate(1, ForwardingRule("r1", prefix, "eth1")),
        RuleUpdate(1, ForwardingRule("r2", prefix, ACCEPT)),
    ]


class TestPolicyBoxSplitting:
    def test_policy_added_after_rules_splits_ecs(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        before = model.ecs.num_ecs()
        status = checker.add_policy(
            Reachability("narrow", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        # The narrow policy carves its EC out of the wide one and inherits
        # the parent's (delivered) analysis immediately.
        assert model.ecs.num_ecs() == before + 1
        assert status.holds

    def test_two_policies_sharing_an_ec(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        checker.add_policy(
            Reachability("a", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        checker.add_policy(
            isolation("b", "r2", "r0", HeaderBox.from_dst_prefix(NARROW))
        )
        assert checker.status("a").holds
        assert checker.status("b").holds  # nothing flows r2 -> r0

    def test_policy_removal_merges_ec_back(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        checker.add_policy(
            Reachability("narrow", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        split_count = model.ecs.num_ecs()
        checker.remove_policy("narrow")
        assert model.ecs.num_ecs() == split_count - 1
        # The pair map survives the merge consistently.
        fresh = IncrementalChecker(model, checker.endpoints)
        assert checker.delivered_pair_map() == fresh.delivered_pair_map()

    def test_policy_flip_detected_after_its_ec_split(self):
        """A policy whose match splits an EC must still see later changes
        to the child EC."""
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        checker.add_policy(
            Reachability("narrow", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        # Install a more specific blackhole for the narrow prefix at r1.
        batch = updater.apply(
            [RuleUpdate(1, ForwardingRule("r1", NARROW, "host0"))]
        )
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_violated] == ["narrow"]


class TestVacuousAndStable:
    def test_policy_on_unknown_nodes_is_vacuous(self):
        model, updater, checker = build()
        status = checker.add_policy(
            Reachability("ghost", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        assert not status.holds  # nothing delivered yet

    def test_empty_batch_changes_nothing(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        checker.add_policy(
            Reachability("p", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        report = checker.check_batch(updater.apply([]))
        assert not report.affected_ecs
        assert not report.newly_violated and not report.newly_satisfied

    def test_repeated_full_check_is_stable(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        first = checker.delivered_pair_map()
        checker.full_check()
        checker.full_check()
        assert checker.delivered_pair_map() == first

    def test_statuses_unchanged_by_unrelated_traffic(self):
        model, updater, checker = build()
        checker.check_batch(updater.apply(chain(WIDE)))
        checker.add_policy(
            Reachability("p", src="r0", dst="r2",
                         match=HeaderBox.from_dst_prefix(NARROW))
        )
        other = Prefix.parse("192.168.0.0/24")
        report = checker.check_batch(
            updater.apply([RuleUpdate(1, ForwardingRule("r0", other, "eth1"))])
        )
        assert not report.newly_violated and not report.newly_satisfied
        assert checker.status("p").holds
