"""Tests for policy explanation (evidence traces)."""

import pytest

from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import line
from repro.policy.checker import IncrementalChecker, PolicyError
from repro.policy.spec import BlackholeFree, LoopFree, Reachability, isolation
from repro.policy.trace import DELIVERED, DROPPED, LOOPED
from repro.routing.types import ACCEPT

DST = Prefix.parse("172.16.2.0/24")
DST_BOX = HeaderBox.from_dst_prefix(DST)


def build(rules):
    model = NetworkModel(line(3).topology)
    updater = BatchUpdater(model)
    updater.apply([RuleUpdate(1, r) for r in rules])
    checker = IncrementalChecker(model, ["r0", "r1", "r2"])
    return model, updater, checker


CHAIN = [
    ForwardingRule("r0", DST, "eth1"),
    ForwardingRule("r1", DST, "eth1"),
    ForwardingRule("r2", DST, ACCEPT),
]


class TestExplainReachability:
    def test_holding_policy_has_delivered_evidence(self):
        _, _, checker = build(CHAIN)
        checker.add_policy(Reachability("p", src="r0", dst="r2", match=DST_BOX))
        traces = checker.explain("p")
        assert traces
        assert all(t.disposition == DELIVERED for t in traces)
        assert traces[0].path == ["r0", "r1", "r2"]

    def test_violated_policy_shows_where_packets_die(self):
        _, _, checker = build(CHAIN[:1] + CHAIN[2:])  # r1 has no route
        checker.add_policy(Reachability("p", src="r0", dst="r2", match=DST_BOX))
        assert not checker.status("p").holds
        traces = checker.explain("p")
        assert any(t.disposition == DROPPED and t.path == ["r0", "r1"]
                   for t in traces)

    def test_isolation_violation_shows_the_leak(self):
        _, _, checker = build(CHAIN)
        checker.add_policy(isolation("iso", "r0", "r2", DST_BOX))
        traces = checker.explain("iso")
        assert any(t.disposition == DELIVERED for t in traces)

    def test_sample_stays_inside_policy_match(self):
        """Evidence headers come from the policy's match box, not from the
        whole EC footprint."""
        _, _, checker = build(CHAIN)
        http = HeaderBox.build(
            dst_ip=DST.as_interval(), proto=(6, 6), dst_port=(80, 80)
        )
        checker.add_policy(Reachability("http", src="r0", dst="r2", match=http))
        for trace in checker.explain("http"):
            assert http.contains(trace.header)

    def test_unknown_policy_rejected(self):
        _, _, checker = build(CHAIN)
        with pytest.raises(PolicyError):
            checker.explain("ghost")


class TestExplainInvariants:
    def test_loop_evidence(self):
        _, _, checker = build(
            [
                ForwardingRule("r0", DST, "eth1"),
                ForwardingRule("r1", DST, "eth0"),
            ]
        )
        checker.add_policy(LoopFree("lf"))
        assert not checker.status("lf").holds
        traces = checker.explain("lf")
        assert any(t.disposition == LOOPED for t in traces)

    def test_blackhole_evidence(self):
        _, _, checker = build([ForwardingRule("r0", DST, "eth1")])
        checker.add_policy(BlackholeFree("bf"))
        assert not checker.status("bf").holds
        traces = checker.explain("bf")
        assert any(
            t.disposition == DROPPED and t.path[-1] == "r1" for t in traces
        )

    def test_clean_network_has_no_invariant_evidence(self):
        _, _, checker = build(CHAIN)
        checker.add_policy(LoopFree("lf"))
        assert checker.explain("lf") == []
