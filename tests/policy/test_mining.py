"""Tests for specification mining."""

import pytest

from repro.config.changes import ShutdownInterface
from repro.net.topologies import fat_tree, line, ring
from repro.policy.mining import SpecificationMiner, single_link_failures
from repro.workloads import bgp_snapshot, ospf_snapshot


class TestConditionSpace:
    def test_one_condition_per_link(self):
        labeled = ring(4)
        conditions = single_link_failures(labeled)
        assert len(conditions) == labeled.topology.num_links()
        assert all(isinstance(c, ShutdownInterface) for c in conditions)


class TestRingMining:
    """A ring survives any single link failure: everything stays
    reachable, but the width drops from 2 to 1."""

    @pytest.fixture(scope="class")
    def spec(self):
        labeled = ring(4)
        miner = SpecificationMiner(labeled, ospf_snapshot(labeled))
        return miner.mine()

    def test_all_pairs_fault_tolerant(self, spec):
        assert len(spec.always_reachable) == 4 * 3
        assert not spec.fragile

    def test_width_under_failures_is_one(self, spec):
        assert set(spec.min_width.values()) == {1}

    def test_conditions_counted(self, spec):
        assert spec.conditions == 4

    def test_summary(self, spec):
        assert "always-reachable" in spec.summary()


class TestLineMining:
    """A line is fragile: any interior link failure splits it."""

    def test_everything_fragile_except_nothing(self):
        labeled = line(3)
        miner = SpecificationMiner(labeled, ospf_snapshot(labeled))
        spec = miner.mine()
        assert not spec.always_reachable
        assert len(spec.fragile) == 3 * 2
        assert spec.min_width[("r0", "r2")] == 0

    def test_subset_of_conditions(self):
        labeled = line(3)
        miner = SpecificationMiner(labeled, ospf_snapshot(labeled))
        # Only fail the r0-r1 link: r1<->r2 remains fault tolerant.
        conditions = [ShutdownInterface("r0", "eth1")]
        spec = miner.mine(conditions)
        assert ("r1", "r2") in spec.always_reachable
        assert ("r0", "r2") in spec.fragile

    def test_without_widths(self):
        labeled = line(3)
        miner = SpecificationMiner(labeled, ospf_snapshot(labeled))
        spec = miner.mine(with_widths=False)
        assert spec.min_width == {}


class TestFatTreeMining:
    def test_fault_tolerance_of_the_fabric(self):
        labeled = fat_tree(4)
        miner = SpecificationMiner(
            labeled, bgp_snapshot(labeled), endpoints=labeled.edge_nodes()
        )
        # A manageable condition subset: the first 8 links.
        spec = miner.mine(single_link_failures(labeled)[:8], with_widths=False)
        edges = labeled.edge_nodes()
        assert len(spec.always_reachable) == len(edges) * (len(edges) - 1)
        assert not spec.fragile

    def test_matches_from_scratch_mining(self):
        """The warm miner's verdicts equal naive per-condition analysis."""
        from repro.config.changes import apply_changes
        from repro.dataplane.batch import BatchUpdater
        from repro.dataplane.model import NetworkModel
        from repro.dataplane.rule import updates_from_fib
        from repro.policy.checker import IncrementalChecker
        from repro.routing.program import ControlPlane

        labeled = ring(5)
        snapshot = ospf_snapshot(labeled)
        conditions = single_link_failures(labeled)[:4]
        miner = SpecificationMiner(labeled, snapshot)
        spec = miner.mine(conditions, with_widths=False)

        def pairs_for(snap):
            control_plane = ControlPlane()
            fib = control_plane.update_to(snap)
            model = NetworkModel(labeled.topology)
            updater = BatchUpdater(model)
            updater.apply(updates_from_fib(fib.inserted, fib.deleted))
            checker = IncrementalChecker(model, miner.endpoints)
            return frozenset(
                pair
                for pair, ecs in checker.delivered_pair_map().items()
                if ecs
            )

        always = pairs_for(snapshot)
        for condition in conditions:
            failed, _ = apply_changes(snapshot, [condition])
            always &= pairs_for(failed)
        assert spec.always_reachable == always
