"""Tests for the Multipath (load-balance / fault-width) policy."""


from repro.config.changes import EnableInterface, ShutdownInterface
from repro.core.realconfig import RealConfig
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import fat_tree, ring
from repro.policy.checker import IncrementalChecker, _node_disjoint_paths
from repro.policy.spec import Multipath
from repro.routing.types import ACCEPT
from repro.workloads import bgp_snapshot

DST = Prefix.parse("172.16.2.0/24")
DST_BOX = HeaderBox.from_dst_prefix(DST)


class TestDisjointPaths:
    def test_two_disjoint_on_ring(self):
        edges = {"r0": ("r1", "r3"), "r1": ("r2",), "r3": ("r2",)}
        assert _node_disjoint_paths(edges, "r0", "r2") == 2

    def test_shared_transit_counts_once(self):
        edges = {"a": ("m",), "b": ("m",), "m": ("d",)}
        assert _node_disjoint_paths(edges, "a", "d") == 1

    def test_unreachable_is_zero(self):
        assert _node_disjoint_paths({"a": ("b",)}, "a", "z") == 0

    def test_direct_edge(self):
        assert _node_disjoint_paths({"a": ("b",)}, "a", "b") == 1

    def test_diamond_with_bottleneck(self):
        # a -> {x, y} -> m -> d: two branches but one bottleneck m.
        edges = {"a": ("x", "y"), "x": ("m",), "y": ("m",), "m": ("d",)}
        assert _node_disjoint_paths(edges, "a", "d") == 1


class TestPolicyOnModel:
    def build(self):
        model = NetworkModel(ring(4).topology)
        updater = BatchUpdater(model)
        updater.apply(
            [
                RuleUpdate(1, ForwardingRule("r0", DST, "eth0")),
                RuleUpdate(1, ForwardingRule("r0", DST, "eth1")),
                RuleUpdate(1, ForwardingRule("r1", DST, "eth1")),
                RuleUpdate(1, ForwardingRule("r3", DST, "eth0")),
                RuleUpdate(1, ForwardingRule("r2", DST, ACCEPT)),
            ]
        )
        checker = IncrementalChecker(model, ["r0", "r1", "r2", "r3"])
        return model, updater, checker

    def test_holds_with_two_branches(self):
        _, _, checker = self.build()
        status = checker.add_policy(
            Multipath("lb", src="r0", dst="r2", min_paths=2, match=DST_BOX)
        )
        assert status.holds

    def test_violated_when_branch_removed(self):
        model, updater, checker = self.build()
        checker.add_policy(
            Multipath("lb", src="r0", dst="r2", min_paths=2, match=DST_BOX)
        )
        batch = updater.apply(
            [RuleUpdate(-1, ForwardingRule("r0", DST, "eth0"))]
        )
        report = checker.check_batch(batch)
        assert [s.policy.name for s in report.newly_violated] == ["lb"]
        assert "EC" in report.newly_violated[0].detail

    def test_undelivered_counts_as_zero(self):
        model, updater, checker = self.build()
        status = checker.add_policy(
            Multipath("lb", src="r2", dst="r0", min_paths=1, match=DST_BOX)
        )
        assert not status.holds

    def test_min_one_equals_reachability_width(self):
        _, _, checker = self.build()
        status = checker.add_policy(
            Multipath("lb1", src="r1", dst="r2", min_paths=1, match=DST_BOX)
        )
        assert status.holds


class TestEndToEnd:
    def test_fattree_uplink_redundancy(self):
        labeled = fat_tree(4)
        snapshot = bgp_snapshot(labeled)
        dst_prefix = labeled.host_prefixes["edge2_0"][0]
        verifier = RealConfig(
            snapshot,
            endpoints=labeled.edge_nodes(),
            policies=[
                Multipath(
                    "dual-homed",
                    src="edge0_0",
                    dst="edge2_0",
                    min_paths=2,
                    match=HeaderBox.from_dst_prefix(dst_prefix),
                )
            ],
        )
        assert verifier.checker.status("dual-homed").holds
        # Kill one of edge0_0's two uplinks: width drops to 1.
        delta = verifier.apply_change(ShutdownInterface("edge0_0", "up0"))
        assert [s.policy.name for s in delta.newly_violated] == ["dual-homed"]
        # Restore: satisfied again.
        delta = verifier.apply_change(EnableInterface("edge0_0", "up0"))
        assert [s.policy.name for s in delta.newly_satisfied] == ["dual-homed"]
