"""Tests for per-EC forwarding graph analysis."""


from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import ForwardingRule
from repro.net.addr import Prefix
from repro.net.headerspace import header
from repro.net.topologies import line, ring
from repro.policy.paths import analyze_ec
from repro.routing.types import ACCEPT

DST = Prefix.parse("172.16.2.0/24")


def line_model(hops=("eth1", "eth1"), accept_at="r2"):
    """r0 -> r1 -> r2 with the EC accepted at r2 (by default)."""
    model = NetworkModel(line(3).topology)
    model.insert_forwarding(ForwardingRule("r0", DST, hops[0]))
    model.insert_forwarding(ForwardingRule("r1", DST, hops[1]))
    if accept_at:
        model.insert_forwarding(ForwardingRule(accept_at, DST, ACCEPT))
    return model


def ec_of(model):
    return model.ecs.classify(header(DST.first() + 1))


class TestDeliveries:
    def test_chain_delivery(self):
        model = line_model()
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.delivers("r0", "r2")
        assert analysis.delivers("r1", "r2")
        assert not analysis.delivers("r2", "r0")
        assert analysis.accepts == {"r2"}

    def test_delivered_pairs_exclude_self(self):
        model = line_model()
        analysis = analyze_ec(model, ec_of(model))
        assert ("r2", "r2") not in analysis.delivered_pairs()
        assert ("r0", "r2") in analysis.delivered_pairs()

    def test_no_rules_no_deliveries(self):
        model = NetworkModel(line(3).topology)
        analysis = analyze_ec(model, 0)
        assert not analysis.delivered_pairs()
        assert not analysis.has_loop()
        assert not analysis.blackholes

    def test_multiple_accepts(self):
        model = line_model()
        model.insert_forwarding(ForwardingRule("r0", DST, ACCEPT))
        analysis = analyze_ec(model, ec_of(model))
        # r0 accepts locally: LPM equal length -> accept wins at r0.
        assert "r0" in analysis.accepts


class TestBlackholes:
    def test_drop_after_forward_is_blackhole(self):
        model = line_model(accept_at=None)  # r2 has no rule: drops
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.blackholes == {"r2"}
        assert not analysis.delivered_pairs()

    def test_drop_without_incoming_not_blackhole(self):
        model = NetworkModel(line(3).topology)
        model.insert_forwarding(ForwardingRule("r2", DST, ACCEPT))
        analysis = analyze_ec(model, ec_of(model))
        # r0/r1 drop but nobody forwards to them.
        assert not analysis.blackholes


class TestLoops:
    def test_two_node_loop(self):
        model = NetworkModel(line(3).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r1", DST, "eth0"))
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.loop_nodes == {"r0", "r1"}

    def test_ring_loop(self):
        model = NetworkModel(ring(4).topology)
        for i in range(4):
            model.insert_forwarding(ForwardingRule(f"r{i}", DST, "eth1"))
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.loop_nodes == {"r0", "r1", "r2", "r3"}

    def test_no_loop_on_chain(self):
        model = line_model()
        assert not analyze_ec(model, ec_of(model)).has_loop()

    def test_loop_plus_delivery_branch(self):
        """ECMP where one branch loops and the other delivers."""
        model = NetworkModel(ring(4).topology)
        # r0 forwards both ways; eth1 way delivers at r1, eth0 way loops
        # r3 <-> r0?  Build: r3 -> r0 (eth0 direction reversal).
        model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r0", DST, "eth0"))
        model.insert_forwarding(ForwardingRule("r1", DST, ACCEPT))
        model.insert_forwarding(ForwardingRule("r3", DST, "eth1"))  # back to r0
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.delivers("r0", "r1")
        assert {"r0", "r3"} <= analysis.loop_nodes


class TestEdges:
    def test_edges_deduplicate_parallel_interfaces(self):
        model = line_model()
        analysis = analyze_ec(model, ec_of(model))
        assert analysis.edges["r0"] == ("r1",)

    def test_stub_interface_produces_no_edge(self):
        model = NetworkModel(line(2).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "host0"))
        analysis = analyze_ec(model, ec_of(model))
        assert "r0" not in analysis.edges
