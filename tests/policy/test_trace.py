"""Tests for packet tracing (the paper's §4 debugging functionality)."""


from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import FilterRule, ForwardingRule
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import HeaderBox, header
from repro.net.topologies import line, ring
from repro.policy.trace import (
    DELIVERED,
    DENIED_EGRESS,
    DENIED_INGRESS,
    DISCONNECTED,
    DROPPED,
    LOOPED,
    format_traces,
    trace_packet,
)
from repro.routing.types import ACCEPT

DST = Prefix.parse("172.16.2.0/24")
PACKET = header(parse_ipv4("172.16.2.9"), 0, 6, 80)


def chain_model():
    model = NetworkModel(line(3).topology)
    model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
    model.insert_forwarding(ForwardingRule("r1", DST, "eth1"))
    model.insert_forwarding(ForwardingRule("r2", DST, ACCEPT))
    return model


class TestBasicTraces:
    def test_delivery(self):
        traces = trace_packet(chain_model(), PACKET, "r0")
        assert len(traces) == 1
        trace = traces[0]
        assert trace.delivered()
        assert trace.path == ["r0", "r1", "r2"]
        assert trace.hops[0].out_interface == "eth1"
        assert trace.hops[-1].note == "accept"

    def test_drop_without_route(self):
        model = NetworkModel(line(3).topology)
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == DROPPED
        assert traces[0].path == ["r0"]

    def test_blackhole_mid_path(self):
        model = chain_model()
        model.delete_forwarding(ForwardingRule("r1", DST, "eth1"))
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == DROPPED
        assert traces[0].path == ["r0", "r1"]

    def test_trace_from_destination(self):
        traces = trace_packet(chain_model(), PACKET, "r2")
        assert traces[0].delivered()
        assert traces[0].path == ["r2"]

    def test_disconnected_interface(self):
        model = NetworkModel(line(2).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "host0"))
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == DISCONNECTED


class TestAclTraces:
    def test_egress_denied(self):
        model = chain_model()
        model.insert_filter(
            FilterRule("r0", "eth1", "out", 10, "deny", HeaderBox.everything())
        )
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == DENIED_EGRESS
        assert traces[0].path == ["r0"]

    def test_ingress_denied(self):
        model = chain_model()
        model.insert_filter(
            FilterRule(
                "r1", "eth0", "in", 10, "deny",
                HeaderBox.build(proto=(6, 6), dst_port=(80, 80)),
            )
        )
        model.insert_filter(
            FilterRule("r1", "eth0", "in", 20, "permit", HeaderBox.everything())
        )
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == DENIED_INGRESS
        # A non-HTTP packet sails through.
        ssh = header(parse_ipv4("172.16.2.9"), 0, 6, 22)
        traces = trace_packet(model, ssh, "r0")
        assert traces[0].delivered()


class TestEcmpAndLoops:
    def test_ecmp_produces_multiple_traces(self):
        model = NetworkModel(ring(4).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "eth0"))
        model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r1", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r3", DST, "eth0"))
        model.insert_forwarding(ForwardingRule("r2", DST, ACCEPT))
        traces = trace_packet(model, PACKET, "r0")
        assert len(traces) == 2
        assert all(t.delivered() for t in traces)
        assert {tuple(t.path) for t in traces} == {
            ("r0", "r1", "r2"),
            ("r0", "r3", "r2"),
        }

    def test_loop_detected(self):
        model = NetworkModel(line(3).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r1", DST, "eth0"))
        traces = trace_packet(model, PACKET, "r0")
        assert traces[0].disposition == LOOPED
        assert traces[0].path == ["r0", "r1", "r0"]

    def test_partial_loop_with_delivery_branch(self):
        model = NetworkModel(ring(4).topology)
        model.insert_forwarding(ForwardingRule("r0", DST, "eth0"))
        model.insert_forwarding(ForwardingRule("r0", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r1", DST, "eth1"))
        model.insert_forwarding(ForwardingRule("r2", DST, ACCEPT))
        model.insert_forwarding(ForwardingRule("r3", DST, "eth1"))  # back to r0
        traces = trace_packet(model, PACKET, "r0")
        dispositions = sorted(t.disposition for t in traces)
        assert dispositions == [DELIVERED, LOOPED]


class TestEndToEnd:
    def test_trace_through_realconfig_model(self):
        from repro.core.realconfig import RealConfig
        from repro.workloads import ospf_snapshot

        labeled = line(3)
        verifier = RealConfig(ospf_snapshot(labeled))
        traces = trace_packet(verifier.model, PACKET, "r0")
        assert traces[0].delivered()
        assert traces[0].path == ["r0", "r1", "r2"]

    def test_format(self):
        traces = trace_packet(chain_model(), PACKET, "r0")
        text = format_traces(traces)
        assert "1 path(s)" in text
        assert "delivered" in text
        assert format_traces([]) == "(no traces)"
