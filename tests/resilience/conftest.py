"""Fixtures for the resilience suite."""

from __future__ import annotations

import pytest

from repro.core.realconfig import RealConfig
from repro.net.topologies import ring
from repro.workloads import bgp_snapshot, link_failures

from tests.resilience.helpers import make_policies


@pytest.fixture(scope="module")
def ring_snapshot():
    return bgp_snapshot(ring(4))


@pytest.fixture(scope="module")
def ring_changes(ring_snapshot):
    changes = link_failures(ring_snapshot, seed=3)
    assert changes
    return changes


@pytest.fixture
def verifier(ring_snapshot):
    return RealConfig(ring_snapshot, policies=make_policies())
