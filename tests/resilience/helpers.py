"""Shared helpers for the resilience suite."""

from __future__ import annotations

from repro.core.realconfig import RealConfig
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.policy.spec import LoopFree, Reachability


def make_policies():
    return [
        LoopFree("loop-free"),
        Reachability(
            "r0->r2",
            src="r0",
            dst="r2",
            match=HeaderBox.from_dst_prefix(Prefix.parse("172.16.2.0/24")),
        ),
    ]


def fingerprint(verifier: RealConfig):
    """Everything a verification can change, as one comparable value:
    engine epoch + stored records, the full FIB, the EC partition size,
    and every policy verdict."""
    control_plane = verifier.generator.control_plane
    return (
        control_plane.compiled.engine._epoch,
        control_plane.state_size(),
        tuple(control_plane.fib()),
        verifier.model.num_ecs(),
        tuple(
            sorted(
                (status.policy.name, status.holds)
                for status in verifier.checker.statuses()
            )
        ),
    )


def verdicts(verifier: RealConfig):
    return {
        status.policy.name: status.holds
        for status in verifier.checker.statuses()
    }
