"""Drift audit and recovery."""

import pytest

from repro.core.realconfig import RealConfig
from repro.resilience.audit import audit, recover

from tests.resilience.helpers import fingerprint, make_policies, verdicts

BOGUS_PORT = ("fwd", ("no-such-iface",))


def corrupt_port_map(verifier, device="r2"):
    """Silently move one EC to a port no real rule ever produces —
    exactly the damage a lost EC-move event would cause."""
    ports = verifier.model.device(device).ports
    ec = sorted(verifier.model.ecs.ec_ids())[0]
    ports.move(ec, BOGUS_PORT)


def corrupt_fib(verifier):
    """Drop one record from the engine's FIB probe history."""
    probe = verifier.generator.control_plane.compiled._probes["fib"]
    record = sorted(probe.history._data, key=repr)[0]
    del probe.history._data[record]


class TestHealthyAudit:
    def test_fresh_verifier_is_clean(self, verifier):
        report = audit(verifier)
        assert report.ok
        assert report.checked_model
        assert report.summary().startswith("audit clean")

    def test_clean_after_changes(self, ring_snapshot, ring_changes):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        for change in ring_changes[:2]:
            verifier.apply_changes([change])
        report = audit(verifier)
        assert report.ok, report.summary()

    def test_priority_mode_audits_fib_only(self, ring_snapshot):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), model_mode="priority"
        )
        report = audit(verifier)
        assert report.ok
        assert not report.checked_model


class TestDriftDetection:
    def test_port_corruption_detected(self, verifier):
        corrupt_port_map(verifier)
        report = audit(verifier)
        assert not report.ok
        assert report.port_drift
        assert not report.fib_missing and not report.fib_extra
        assert "DRIFT" in report.summary()

    def test_fib_corruption_detected(self, verifier):
        corrupt_fib(verifier)
        report = audit(verifier)
        assert not report.ok
        assert report.fib_missing

    def test_drift_details_name_the_device(self, verifier):
        corrupt_port_map(verifier, device="r1")
        report = audit(verifier)
        assert any(drift.device == "r1" for drift in report.port_drift)
        assert any(
            drift.actual == BOGUS_PORT for drift in report.port_drift
        )


class TestRecovery:
    def test_recover_on_clean_verifier_is_a_noop(self, verifier):
        before = fingerprint(verifier)
        first, second = recover(verifier)
        assert first.ok
        assert second is None
        assert fingerprint(verifier) == before

    def test_recover_rebuilds_and_passes_audit(
        self, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        corrupt_port_map(verifier)
        first, second = recover(verifier)
        assert not first.ok
        assert second is not None and second.ok
        # The recovered verifier verifies changes correctly again.
        verifier.apply_changes([ring_changes[0]])
        assert audit(verifier).ok

    def test_recover_preserves_policies(self, verifier):
        names_before = sorted(p.name for p in verifier.checker.policies())
        corrupt_port_map(verifier)
        recover(verifier)
        assert (
            sorted(p.name for p in verifier.checker.policies())
            == names_before
        )


class TestSelfCheckMode:
    def test_audit_every_detects_and_rebuilds(self, ring_snapshot):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), audit_every=1
        )
        corrupt_port_map(verifier)
        # A no-op verification; its post-verify self-check must catch the
        # pre-existing corruption and rebuild.
        verifier.verify_snapshot(ring_snapshot)
        assert verifier.last_audit is not None
        assert not verifier.last_audit.ok
        assert audit(verifier).ok

    def test_audit_every_counts_verifications(
        self, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), audit_every=2
        )
        verifier.apply_changes([ring_changes[0]])
        assert verifier.last_audit is None  # 1 of 2
        verifier.apply_changes([ring_changes[1]])
        assert verifier.last_audit is not None  # 2 of 2: audited
        assert verifier.last_audit.ok

    def test_healthy_self_check_does_not_rebuild(
        self, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), audit_every=1
        )
        model_before = verifier.model
        delta = verifier.apply_changes([ring_changes[0]])
        assert verifier.last_audit is not None and verifier.last_audit.ok
        # a rebuild would have replaced every component; a clean
        # self-check must leave them in place
        assert verifier.model is model_before
        assert delta.rule_updates


class TestAuditAfterRestore:
    def test_restored_checkpoint_audits_clean(
        self, tmp_path, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        verifier.apply_changes([ring_changes[0]])
        path = tmp_path / "v.ckpt"
        verifier.checkpoint(path)
        restored = RealConfig.restore(path)
        assert audit(restored).ok
        assert verdicts(restored) == verdicts(verifier)
