"""Checkpoint / restore round trips and crash-safe writes."""

import pickle

import pytest

from repro.core.realconfig import RealConfig
from repro.resilience.checkpoint import (
    EXTRAS_VERSION,
    FORMAT,
    CheckpointError,
    checkpoint_payload_bytes,
    read_checkpoint,
    read_checkpoint_extras,
    write_checkpoint,
)
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec, inject

from tests.resilience.helpers import fingerprint, make_policies, verdicts


def delta_signature(delta, verifier):
    """A comparable digest of one VerificationDelta."""
    return (
        sorted(repr(update) for update in delta.rule_updates),
        sorted(delta.batch.affected_ec_ids(verifier.model)),
        sorted(repr(status) for status in delta.newly_violated),
        sorted(repr(status) for status in delta.newly_satisfied),
        delta.ok,
    )


class TestRoundTrip:
    def test_restored_state_is_identical(
        self, tmp_path, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        verifier.apply_changes([ring_changes[0]])
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        restored = RealConfig.restore(path)
        assert fingerprint(restored) == fingerprint(verifier)
        assert restored.snapshot.device("r0") == verifier.snapshot.device("r0")
        assert restored._options == verifier._options

    def test_restored_verifier_resumes_without_reconvergence(
        self, tmp_path, ring_snapshot, ring_changes
    ):
        """The restored verifier picks up incrementally: the next change
        produces byte-identical VerificationDeltas on both sides, and the
        engine epoch counter continues instead of restarting."""
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        verifier.apply_changes([ring_changes[0]])
        epoch = verifier.generator.control_plane.compiled.engine._epoch
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        restored = RealConfig.restore(path)
        assert (
            restored.generator.control_plane.compiled.engine._epoch == epoch
        )
        original_delta = verifier.apply_changes([ring_changes[1]])
        restored_delta = restored.apply_changes([ring_changes[1]])
        assert delta_signature(restored_delta, restored) == delta_signature(
            original_delta, verifier
        )
        assert verdicts(restored) == verdicts(verifier)

    def test_lint_state_round_trips(self, tmp_path, ring_snapshot):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), lint_mode="warn"
        )
        assert verifier._lint_result is not None
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        restored = RealConfig.restore(path)
        assert restored.lint_mode == "warn"
        assert restored._lint_runner is not None
        assert restored._lint_result is not None
        assert [str(d) for d in restored._lint_result.diagnostics] == [
            str(d) for d in verifier._lint_result.diagnostics
        ]

    def test_initial_delta_travels(self, tmp_path, ring_snapshot):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        restored = RealConfig.restore(path)
        assert restored.initial.ok == verifier.initial.ok
        assert len(restored.initial.rule_updates) == len(
            verifier.initial.rule_updates
        )

    def test_module_level_api(self, tmp_path, ring_snapshot):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        write_checkpoint(verifier, path)
        restored = read_checkpoint(path)
        assert fingerprint(restored) == fingerprint(verifier)


class TestCrashSafeWrite:
    def test_crash_mid_write_preserves_previous_checkpoint(
        self, tmp_path, ring_snapshot, ring_changes
    ):
        """Kill the write between the temp file and the rename: the old
        checkpoint must survive byte-identical, and no temp file leaks."""
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        before = path.read_bytes()

        verifier.apply_changes([ring_changes[0]])
        plan = FaultPlan(FaultSpec("checkpoint_write"))
        with inject(plan):
            with pytest.raises(FaultInjected):
                verifier.checkpoint(path)
        assert plan.fired
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))
        restored = read_checkpoint(path)  # still a valid checkpoint
        assert restored.model.num_ecs() > 0

    def test_successful_write_replaces_atomically(
        self, tmp_path, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        verifier.checkpoint(path)
        verifier.apply_changes([ring_changes[0]])
        verifier.checkpoint(path)
        assert not list(tmp_path.glob("*.tmp"))
        assert fingerprint(read_checkpoint(path)) == fingerprint(verifier)


class TestExtras:
    def test_extras_round_trip_without_restore(self, tmp_path, ring_snapshot):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        write_checkpoint(
            verifier, path, extras={"serve": {"cursor": 17}}
        )
        assert read_checkpoint_extras(path) == {"serve": {"cursor": 17}}
        # and the verifier itself still restores
        assert read_checkpoint(path).model.num_ecs() == verifier.model.num_ecs()

    def test_extras_default_to_empty(self, tmp_path, ring_snapshot):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        write_checkpoint(verifier, path)
        assert read_checkpoint_extras(path) == {}

    def test_writes_carry_the_extras_schema_version(
        self, tmp_path, ring_snapshot
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "verifier.ckpt"
        write_checkpoint(verifier, path, extras={"serve": {"cursor": 3}})
        payload = pickle.loads(checkpoint_payload_bytes(path))
        assert payload["extras_version"] == EXTRAS_VERSION

    def test_newer_extras_envelope_is_refused_not_misparsed(
        self, tmp_path, ring_snapshot
    ):
        """A checkpoint written by a future repro (extras schema bumped)
        must fail with CheckpointError — the CLI's exit-2 contract — not
        restore against a mis-read cursor or crash with a traceback."""
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "future-extras.ckpt"
        write_checkpoint(verifier, path, extras={"serve": {"cursor": 3}})
        payload = pickle.loads(checkpoint_payload_bytes(path))
        payload["extras_version"] = EXTRAS_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError, match="upgrade repro"):
            read_checkpoint(path)
        with pytest.raises(CheckpointError, match="upgrade repro"):
            read_checkpoint_extras(path)

    def test_non_integer_extras_version_is_refused(
        self, tmp_path, ring_snapshot
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "odd.ckpt"
        write_checkpoint(verifier, path)
        payload = pickle.loads(checkpoint_payload_bytes(path))
        payload["extras_version"] = "2"
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError):
            read_checkpoint_extras(path)

    def test_pre_versioning_checkpoint_still_restores(
        self, tmp_path, ring_snapshot
    ):
        """Checkpoints from before the envelope was versioned carry no
        marker; they are version 1 by definition and must keep loading."""
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        path = tmp_path / "legacy.ckpt"
        write_checkpoint(verifier, path, extras={"serve": {"cursor": 9}})
        payload = pickle.loads(checkpoint_payload_bytes(path))
        del payload["extras_version"]
        path.write_bytes(pickle.dumps(payload))
        assert read_checkpoint_extras(path) == {"serve": {"cursor": 9}}
        restored = read_checkpoint(path)
        assert restored.model.num_ecs() == verifier.model.num_ecs()


class TestBadFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"this is not a pickle at all")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(pickle.dumps({"format": FORMAT, "version": 999}))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_valid_envelope_with_garbage_state(self, tmp_path):
        """A correct format/version header around unrestorable innards must
        still surface as CheckpointError, not a bare KeyError traceback —
        the CLI's exit-2 contract reads the exception type."""
        path = tmp_path / "hollow.ckpt"
        path.write_bytes(pickle.dumps({"format": FORMAT, "version": 1}))
        with pytest.raises(CheckpointError, match="cannot restore"):
            read_checkpoint(path)
