"""Property-based corruption fuzzing: any truncation or bit flip of a
checkpoint file must surface as a clean :class:`CheckpointError` (exit 2
through the CLI) — never a raw pickle traceback, never silent success
with damaged state."""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cli import main  # noqa: E402
from repro.core.realconfig import RealConfig  # noqa: E402
from repro.net.topologies import ring  # noqa: E402
from repro.resilience.checkpoint import (  # noqa: E402
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.workloads import bgp_snapshot  # noqa: E402

from tests.resilience.helpers import make_policies  # noqa: E402


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One valid checkpoint, written once; each example copies its bytes."""
    verifier = RealConfig(bgp_snapshot(ring(4)), policies=make_policies())
    path = tmp_path_factory.mktemp("fuzz") / "pristine.ckpt"
    write_checkpoint(verifier, path, keep=1)
    return path.read_bytes()


FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestCorruptionAlwaysTyped:
    @FUZZ_SETTINGS
    @given(data=st.data())
    def test_truncation_raises_checkpoint_error(
        self, pristine, tmp_path, data
    ):
        cut = data.draw(
            st.integers(min_value=0, max_value=len(pristine) - 1)
        )
        mangled = tmp_path / "truncated.ckpt"
        mangled.write_bytes(pristine[:cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(mangled)

    @FUZZ_SETTINGS
    @given(data=st.data())
    def test_bit_flip_raises_checkpoint_error(
        self, pristine, tmp_path, data
    ):
        offset = data.draw(
            st.integers(min_value=0, max_value=len(pristine) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        damaged = bytearray(pristine)
        damaged[offset] ^= 1 << bit
        mangled = tmp_path / "flipped.ckpt"
        mangled.write_bytes(bytes(damaged))
        with pytest.raises(CheckpointError):
            read_checkpoint(mangled)

    @FUZZ_SETTINGS
    @given(data=st.data())
    def test_junk_injection_raises_checkpoint_error(
        self, pristine, tmp_path, data
    ):
        offset = data.draw(
            st.integers(min_value=0, max_value=len(pristine))
        )
        junk = data.draw(st.binary(min_size=1, max_size=64))
        mangled = tmp_path / "injected.ckpt"
        mangled.write_bytes(pristine[:offset] + junk + pristine[offset:])
        with pytest.raises(CheckpointError):
            read_checkpoint(mangled)


class TestCliExitTwo:
    """A handful of fixed corruptions through the real CLI: the exit-2
    contract with a message, never a traceback."""

    @pytest.fixture
    def base_dir(self, tmp_path):
        path = tmp_path / "base"
        assert main(["generate", "--topology", "ring:4", "--protocol",
                     "bgp", "--out", str(path)]) == 0
        return path

    @pytest.mark.parametrize(
        "mangle",
        [
            pytest.param(lambda data: data[: len(data) // 2], id="truncated"),
            pytest.param(lambda data: data[:7], id="torn-magic"),
            pytest.param(
                lambda data: data[:-30]
                + bytes(byte ^ 0xFF for byte in data[-30:]),
                id="flipped-tail",
            ),
            pytest.param(lambda data: b"\x80\x05junk" + data, id="prefixed"),
        ],
    )
    def test_corrupt_resume_exits_two(
        self, base_dir, tmp_path, capsys, mangle
    ):
        ckpt = tmp_path / "base.ckpt"
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        ckpt.write_bytes(mangle(ckpt.read_bytes()))
        capsys.readouterr()
        assert main(["verify", str(base_dir), str(base_dir),
                     "--resume-from", str(ckpt)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
