"""The checksummed envelope and the generation ring: corruption is
detected, the newest verifying generation is restored, and
incompatibility is never fallen back across."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.resilience.checkpoint import (
    DEFAULT_GENERATIONS,
    ENVELOPE_VERSION,
    MAGIC_PREFIX,
    CheckpointCorruptError,
    CheckpointError,
    checkpoint_payload_bytes,
    generation_path,
    manifest_path,
    read_checkpoint,
    resolve_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)

from tests.resilience.helpers import fingerprint


def corrupt(path, offset=-40):
    """Flip a byte well inside the pickle payload."""
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestEnvelope:
    def test_checkpoint_file_starts_with_magic(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        head = ckpt.read_bytes()[:64]
        assert head.startswith(
            MAGIC_PREFIX + str(ENVELOPE_VERSION).encode() + b"\n"
        )

    def test_header_digest_matches_payload(self, verifier, tmp_path):
        import hashlib

        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        header_line = ckpt.read_bytes().split(b"\n", 2)[1]
        header = json.loads(header_line)
        payload = checkpoint_payload_bytes(ckpt)
        assert header["payload_bytes"] == len(payload)
        assert header["digest"] == hashlib.sha256(payload).hexdigest()

    def test_flipped_payload_byte_is_corruption(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt, keep=1)
        corrupt(ckpt)
        with pytest.raises(CheckpointCorruptError, match="digest mismatch"):
            read_checkpoint(ckpt)

    def test_legacy_raw_pickle_still_reads(self, verifier, tmp_path):
        """Pre-envelope checkpoints (no magic line) are raw pickles and
        must keep restoring."""
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt, keep=1)
        ckpt.write_bytes(checkpoint_payload_bytes(ckpt))  # strip envelope
        restored = read_checkpoint(ckpt)
        assert fingerprint(restored) == fingerprint(verifier)


class TestGenerationRing:
    def test_second_write_keeps_the_first_as_gen_one(
        self, verifier, tmp_path
    ):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        first = ckpt.read_bytes()
        write_checkpoint(verifier, ckpt)
        assert generation_path(ckpt, 1).read_bytes() == first
        assert not generation_path(ckpt, 2).exists()

    def test_ring_is_bounded_by_keep(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        for _ in range(DEFAULT_GENERATIONS + 2):
            write_checkpoint(verifier, ckpt)
        for generation in range(DEFAULT_GENERATIONS):
            assert generation_path(ckpt, generation).exists()
        assert not generation_path(ckpt, DEFAULT_GENERATIONS).exists()

    def test_keep_one_disables_the_ring(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt, keep=1)
        write_checkpoint(verifier, ckpt, keep=1)
        assert not generation_path(ckpt, 1).exists()

    def test_manifest_lists_generations_with_digests(
        self, verifier, tmp_path
    ):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        manifest = json.loads(manifest_path(ckpt).read_text())
        assert manifest["format"] == "repro-checkpoint-manifest"
        assert manifest["keep"] == DEFAULT_GENERATIONS
        generations = manifest["generations"]
        assert [entry["generation"] for entry in generations] == [0, 1]
        for entry in generations:
            header = json.loads(
                (tmp_path / entry["file"]).read_bytes().split(b"\n", 2)[1]
            )
            assert entry["digest"] == header["digest"]


class TestFallback:
    def test_corrupt_newest_falls_back_to_previous(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        corrupt(ckpt)
        resolved = resolve_checkpoint(ckpt)
        assert resolved.fell_back
        assert resolved.generation == 1
        assert resolved.path == generation_path(ckpt, 1)
        assert len(resolved.skipped) == 1
        skipped_path, skipped_error = resolved.skipped[0]
        assert skipped_path == ckpt
        assert isinstance(skipped_error, CheckpointCorruptError)

    def test_fallback_restores_equivalent_state(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        corrupt(ckpt)
        restored = restore_checkpoint(ckpt)
        assert restored.fell_back
        assert fingerprint(restored.verifier) == fingerprint(verifier)

    def test_missing_gen_zero_falls_back(self, verifier, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        ckpt.unlink()
        resolved = resolve_checkpoint(ckpt)
        assert resolved.generation == 1

    def test_all_generations_corrupt_raises_primary_error(
        self, verifier, tmp_path
    ):
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        corrupt(ckpt)
        corrupt(generation_path(ckpt, 1))
        with pytest.raises(CheckpointCorruptError) as excinfo:
            resolve_checkpoint(ckpt)
        # The generation-0 error surfaces, not the fallback's.
        assert str(ckpt) in str(excinfo.value)

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such file"):
            resolve_checkpoint(tmp_path / "ghost.ckpt")

    def test_incompatibility_is_never_fallen_back_across(
        self, verifier, tmp_path
    ):
        """A future envelope version means 'upgrade repro', and silently
        restoring older state would mask that — it must raise even though
        generation 1 verifies fine."""
        ckpt = tmp_path / "v.ckpt"
        write_checkpoint(verifier, ckpt)
        write_checkpoint(verifier, ckpt)
        data = ckpt.read_bytes()
        future = data.replace(
            MAGIC_PREFIX + str(ENVELOPE_VERSION).encode(),
            MAGIC_PREFIX + str(ENVELOPE_VERSION + 1).encode(),
            1,
        )
        ckpt.write_bytes(future)
        with pytest.raises(CheckpointError, match="upgrade repro"):
            resolve_checkpoint(ckpt)


class TestCliResumeFallback:
    """The acceptance criterion: corrupting the newest generation must
    not break ``verify --resume-from`` — it transparently falls back."""

    @pytest.fixture
    def base_dir(self, tmp_path):
        path = tmp_path / "base"
        assert main(["generate", "--topology", "ring:4", "--protocol",
                     "bgp", "--out", str(path)]) == 0
        return path

    @pytest.fixture
    def changed_dir(self, base_dir, tmp_path):
        import shutil

        path = tmp_path / "changed"
        shutil.copytree(base_dir, path)
        cfg = path / "configs" / "r0.cfg"
        cfg.write_text(
            cfg.read_text().replace(
                "interface eth1\n", "interface eth1\n shutdown\n", 1
            )
        )
        return path

    def test_resume_from_corrupt_newest_generation_succeeds(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        ckpt = tmp_path / "base.ckpt"
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        corrupt(ckpt)
        capsys.readouterr()
        assert main(["verify", str(base_dir), str(changed_dir),
                     "--resume-from", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert "fell back to checkpoint generation 1" in captured.err
        assert "resumed verifier from" in captured.out


class TestTenantRehydrationFallback:
    """The other acceptance criterion: a tenant whose newest checkpoint
    generation is corrupt rehydrates from the previous one and journals
    a checkpoint-fallback event."""

    def test_rehydrate_falls_back_and_journals(self, tmp_path):
        from repro.obs.journal import EVENT_CHECKPOINT_FALLBACK, EventJournal
        from repro.serve.engine import ServeOptions
        from repro.tenants import TenantConfig, TenantRegistry, discover_tenants
        from repro.workloads.tenants import build_fleet

        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=11)
        options = ServeOptions(breaker_threshold=0, backoff_base=0.0)
        registry = TenantRegistry(options)
        config = discover_tenants(tmp_path / "fleet")[0]
        registry.register(config)
        # Two evict cycles: the ring now holds two generations.
        registry.hydrate("t000")
        assert registry.evict("t000")
        registry.hydrate("t000")
        assert registry.evict("t000")
        assert generation_path(config.checkpoint_file, 1).exists()
        corrupt(config.checkpoint_file)

        journal = EventJournal(tmp_path / "journal.jsonl")
        registry2 = TenantRegistry(options, journal=journal)
        registry2.register(TenantConfig.load(config.root))
        registry2.hydrate("t000")

        events = [
            event for event in journal.events_since(0)
            if event["event"] == EVENT_CHECKPOINT_FALLBACK
        ]
        assert len(events) == 1
        assert events[0]["tenant"] == "t000"
        assert events[0]["generation"] == 1
