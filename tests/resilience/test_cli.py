"""CLI surface of the resilience layer: ``repro checkpoint``,
``repro verify --resume-from``, ``repro audit``, and the exit-2 contract
for topology-changing snapshots."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def base_dir(tmp_path):
    path = tmp_path / "base"
    assert main(["generate", "--topology", "ring:4", "--protocol", "bgp",
                 "--out", str(path)]) == 0
    return path


@pytest.fixture
def changed_dir(base_dir, tmp_path):
    import shutil

    path = tmp_path / "changed"
    shutil.copytree(base_dir, path)
    cfg = path / "configs" / "r0.cfg"
    text = cfg.read_text()
    assert "interface eth1" in text
    cfg.write_text(
        text.replace("interface eth1\n", "interface eth1\n shutdown\n", 1)
    )
    return path


class TestCheckpointCommand:
    def test_writes_a_loadable_checkpoint(self, base_dir, tmp_path, capsys):
        out = tmp_path / "base.ckpt"
        assert main(["checkpoint", str(base_dir), str(out)]) == 0
        captured = capsys.readouterr()
        assert "wrote checkpoint" in captured.out
        assert out.exists() and out.stat().st_size > 0

    def test_missing_snapshot_exits_two(self, tmp_path):
        assert main(["checkpoint", str(tmp_path / "ghost"),
                     str(tmp_path / "out.ckpt")]) == 2


class TestResumeFrom:
    def test_resume_matches_cold_start(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        ckpt = tmp_path / "base.ckpt"
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        capsys.readouterr()
        cold = main(["verify", str(base_dir), str(changed_dir)])
        cold_out = capsys.readouterr().out
        resumed = main(["verify", str(base_dir), str(changed_dir),
                        "--resume-from", str(ckpt)])
        resumed_out = capsys.readouterr().out
        assert resumed == cold
        assert "resumed verifier from" in resumed_out
        # identical verification outcome line (modulo wall-clock timing)
        def check_lines(text):
            return [
                line.split(" (")[0]
                for line in text.splitlines()
                if line.startswith("check:")
            ]

        assert check_lines(cold_out) == check_lines(resumed_out)

    def test_corrupt_checkpoint_exits_two(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"junk")
        assert main(["verify", str(base_dir), str(changed_dir),
                     "--resume-from", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "corrupt checkpoint" in err

    def test_missing_checkpoint_exits_two_with_message(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        """The error contract for --resume-from pointing nowhere: exit 2
        and the CheckpointError message on stderr, never a traceback."""
        assert main(["verify", str(base_dir), str(changed_dir),
                     "--resume-from", str(tmp_path / "missing.ckpt")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "cannot read checkpoint" in err
        assert "Traceback" not in err

    def test_hollow_checkpoint_exits_two(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        """A well-formed envelope whose inner state cannot be restored used
        to leak the restore exception as a traceback; it must exit 2."""
        import pickle

        from repro.resilience.checkpoint import FORMAT

        hollow = tmp_path / "hollow.ckpt"
        hollow.write_bytes(pickle.dumps({"format": FORMAT, "version": 1}))
        assert main(["verify", str(base_dir), str(changed_dir),
                     "--resume-from", str(hollow)]) == 2
        err = capsys.readouterr().err
        assert "cannot restore verifier state" in err
        assert "Traceback" not in err

    def test_future_extras_version_exits_two_with_upgrade_hint(
        self, base_dir, changed_dir, tmp_path, capsys
    ):
        """A checkpoint whose extras envelope comes from a newer repro
        must exit 2 with an actionable message, not a stack trace."""
        import pickle

        from repro.resilience.checkpoint import (
            EXTRAS_VERSION,
            checkpoint_payload_bytes,
        )

        ckpt = tmp_path / "future.ckpt"
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        capsys.readouterr()
        payload = pickle.loads(checkpoint_payload_bytes(ckpt))
        payload["extras_version"] = EXTRAS_VERSION + 1
        # Written back raw (pre-envelope style): the reader must still
        # apply the extras check on the legacy fallback path.
        ckpt.write_bytes(pickle.dumps(payload))
        assert main(["verify", str(base_dir), str(changed_dir),
                     "--resume-from", str(ckpt)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "upgrade repro" in err
        assert "Traceback" not in err


class TestAuditCommand:
    def test_snapshot_directory_audits_clean(self, base_dir, capsys):
        assert main(["audit", str(base_dir)]) == 0
        assert "audit clean" in capsys.readouterr().out

    def test_checkpoint_file_audits_clean(self, base_dir, tmp_path, capsys):
        ckpt = tmp_path / "base.ckpt"
        assert main(["checkpoint", str(base_dir), str(ckpt)]) == 0
        assert main(["audit", str(ckpt)]) == 0
        assert "restored verifier from checkpoint" in capsys.readouterr().out

    def test_recover_flag_on_clean_state(self, base_dir, capsys):
        assert main(["audit", str(base_dir), "--recover"]) == 0

    def test_corrupt_checkpoint_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"junk")
        assert main(["audit", str(bad)]) == 2


class TestTopologyChangeExitCode:
    def test_changed_link_set_exits_two_with_message(
        self, base_dir, tmp_path, capsys
    ):
        """The pinned satellite bug: a changed snapshot whose topology
        differs used to crash with a bare ModelError traceback after the
        base had verified; it must exit 2 with a clear message."""
        import shutil

        rewired = tmp_path / "rewired"
        shutil.copytree(base_dir, rewired)
        topo_file = rewired / "topology.json"
        topology = json.loads(topo_file.read_text())
        topology["links"] = topology["links"][:-1]
        topo_file.write_text(json.dumps(topology, indent=2))
        code = main(["verify", str(base_dir), str(rewired)])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot verify changed snapshot" in captured.err
        assert "topology" in captured.err
