"""Unit tests of the fault-injection harness itself."""

import errno

import pytest

from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_point,
    get_fault_plan,
    inject,
    set_fault_plan,
)


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("stage", action="explode")

    def test_corrupt_requires_mutate(self):
        with pytest.raises(ValueError):
            FaultSpec("stage", action="corrupt")

    def test_calls_are_one_based(self):
        with pytest.raises(ValueError):
            FaultSpec("stage", call=0)


class TestFaultPlan:
    def test_noop_without_active_plan(self):
        assert get_fault_plan() is None
        fault_point("anything")  # must not raise

    def test_raises_on_matching_call(self):
        plan = FaultPlan(FaultSpec("model_update", call=2))
        with inject(plan):
            fault_point("model_update")  # call 1: no fire
            with pytest.raises(FaultInjected):
                fault_point("model_update")  # call 2: fire
        assert plan.fired == [("model_update", 2, "raise")]
        assert plan.calls["model_update"] == 2

    def test_custom_exception(self):
        plan = FaultPlan(
            FaultSpec("stage", exception=MemoryError("simulated OOM"))
        )
        with inject(plan):
            with pytest.raises(MemoryError):
                fault_point("stage")

    def test_other_stages_unaffected(self):
        with inject(FaultPlan(FaultSpec("stage-a"))):
            fault_point("stage-b")
            fault_point("stage-c")

    def test_corrupt_mutates_payload_and_continues(self):
        payload = {"value": 1}
        plan = FaultPlan(
            FaultSpec(
                "stage",
                action="corrupt",
                mutate=lambda p: p.update(value=999),
            )
        )
        with inject(plan):
            fault_point("stage", payload)
        assert payload["value"] == 999
        assert plan.fired == [("stage", 1, "corrupt")]

    def test_delay_fires_and_continues(self):
        plan = FaultPlan(
            FaultSpec("stage", action="delay", delay_seconds=0.0)
        )
        with inject(plan):
            fault_point("stage")
        assert plan.fired == [("stage", 1, "delay")]

    def test_inject_restores_no_plan_even_on_error(self):
        with pytest.raises(FaultInjected):
            with inject(FaultPlan(FaultSpec("stage"))):
                fault_point("stage")
        assert get_fault_plan() is None

    def test_set_and_clear(self):
        plan = FaultPlan()
        set_fault_plan(plan)
        assert get_fault_plan() is plan
        set_fault_plan(None)
        assert get_fault_plan() is None


class TestErrnoAction:
    """``action="errno"`` surfaces as a real OSError — the storage-fault
    shape the journal/checkpoint degradation paths catch — not as the
    generic FaultInjected."""

    def test_defaults_to_enospc(self):
        spec = FaultSpec("journal_write", action="errno")
        assert spec.err == errno.ENOSPC

    def test_fires_oserror_with_errno(self):
        plan = FaultPlan(FaultSpec("journal_write", action="errno"))
        with inject(plan):
            with pytest.raises(OSError) as excinfo:
                fault_point("journal_write")
        assert excinfo.value.errno == errno.ENOSPC
        assert not isinstance(excinfo.value, FaultInjected)
        assert plan.fired == [("journal_write", 1, "errno")]

    def test_custom_errno(self):
        plan = FaultPlan(
            FaultSpec("checkpoint_write", action="errno", err=errno.EIO)
        )
        with inject(plan):
            with pytest.raises(OSError) as excinfo:
                fault_point("checkpoint_write")
        assert excinfo.value.errno == errno.EIO
        assert "Input/output error" in str(excinfo.value)

    def test_repeat_zero_fires_forever(self):
        plan = FaultPlan(
            FaultSpec("journal_write", action="errno", repeat=0)
        )
        with inject(plan):
            for _ in range(3):
                with pytest.raises(OSError):
                    fault_point("journal_write")
