"""Transactional verification: any mid-pipeline failure must leave the
verifier byte-for-byte at its pre-change state, and the *next* verification
must agree with a verifier built from scratch — the exact invariant the
pre-transaction code violated (a failure in ``BatchUpdater.apply`` left the
engine advanced but the model half-updated)."""

import pytest

from repro.config.changes import AddStaticRouteIp, apply_changes
from repro.config.schema import ConfigError
from repro.core.realconfig import LintGateError, RealConfig
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topologies import line, ring
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec, inject
from repro.workloads import bgp_snapshot, ospf_snapshot

from tests.resilience.helpers import fingerprint, make_policies, verdicts

#: Every stage boundary of the pipeline where a fault can strike.
STAGES = [
    "lint_gate",
    "generation",
    "model_update",
    "policy_check",
    "batch.apply",
    "commit",
]


def fresh_equivalent(base_snapshot, changes):
    changed, _ = apply_changes(base_snapshot, changes)
    return RealConfig(changed, policies=make_policies(), lint_mode="warn")


class TestRollbackAtEveryStage:
    @pytest.mark.parametrize("stage", STAGES)
    def test_fault_leaves_state_identical(
        self, ring_snapshot, ring_changes, stage
    ):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), lint_mode="warn"
        )
        before = fingerprint(verifier)
        with inject(FaultPlan(FaultSpec(stage))) as plan:
            with pytest.raises(FaultInjected):
                verifier.apply_changes([ring_changes[0]])
        assert plan.fired, f"fault at {stage!r} never fired"
        assert fingerprint(verifier) == before

    @pytest.mark.parametrize("stage", STAGES)
    def test_next_verification_agrees_with_from_scratch(
        self, ring_snapshot, ring_changes, stage
    ):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), lint_mode="warn"
        )
        with inject(FaultPlan(FaultSpec(stage))):
            with pytest.raises(FaultInjected):
                verifier.apply_changes([ring_changes[0]])
        # Retry for real: the rolled-back verifier must produce the same
        # network state as one that never saw the failure.
        verifier.apply_changes([ring_changes[0]])
        fresh = fresh_equivalent(ring_snapshot, [ring_changes[0]])
        assert set(verifier.generator.control_plane.fib()) == set(
            fresh.generator.control_plane.fib()
        )
        assert verdicts(verifier) == verdicts(fresh)


class TestStateDesyncRegression:
    def test_mid_batch_failure_then_retry_matches_from_scratch(
        self, ring_snapshot, ring_changes
    ):
        """The pinned bug: a failure on the third rule update of a batch
        used to leave the engine committed but the model half-updated, so
        every later verification silently diverged."""
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        before = fingerprint(verifier)
        with inject(FaultPlan(FaultSpec("batch.apply", call=3))) as plan:
            with pytest.raises(FaultInjected):
                verifier.apply_changes([ring_changes[0]])
        assert plan.fired, "batch had fewer than 3 rule updates"
        assert fingerprint(verifier) == before
        verifier.apply_changes([ring_changes[0]])
        fresh = fresh_equivalent(ring_snapshot, [ring_changes[0]])
        assert set(verifier.generator.control_plane.fib()) == set(
            fresh.generator.control_plane.fib()
        )
        assert verdicts(verifier) == verdicts(fresh)

    def test_without_transactions_the_desync_is_real(
        self, ring_snapshot, ring_changes
    ):
        """Negative control: with ``transactional=False`` the same fault
        does leave the verifier diverged — proving the test above pins an
        actual failure mode, not a tautology."""
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), transactional=False
        )
        before = fingerprint(verifier)
        with inject(FaultPlan(FaultSpec("batch.apply", call=3))):
            with pytest.raises(FaultInjected):
                verifier.apply_changes([ring_changes[0]])
        assert fingerprint(verifier) != before


class TestLintGateInvariants:
    def test_enforced_rejection_leaves_state_untouched(self, ring_snapshot):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), lint_mode="enforce"
        )
        snapshot_before = verifier.snapshot
        lint_before = verifier._lint_result
        before = fingerprint(verifier)
        # Valid config, but the next hop resolves to nothing: STA001 at
        # error severity, so the enforcing gate must refuse it.
        bad_change = AddStaticRouteIp(
            "r0", Prefix.parse("203.0.113.0/24"), parse_ipv4("8.8.8.8")
        )
        with pytest.raises(LintGateError):
            verifier.apply_changes([bad_change])
        assert verifier.snapshot is snapshot_before
        assert verifier._lint_result is lint_before
        assert fingerprint(verifier) == before

    def test_verifier_still_works_after_rejection(
        self, ring_snapshot, ring_changes
    ):
        verifier = RealConfig(
            ring_snapshot, policies=make_policies(), lint_mode="enforce"
        )
        bad_change = AddStaticRouteIp(
            "r0", Prefix.parse("203.0.113.0/24"), parse_ipv4("8.8.8.8")
        )
        with pytest.raises(LintGateError):
            verifier.apply_changes([bad_change])
        delta = verifier.apply_changes([ring_changes[0]])
        fresh = fresh_equivalent(ring_snapshot, [ring_changes[0]])
        assert verdicts(verifier) == verdicts(fresh)
        assert delta.rule_updates


class TestTopologyGuard:
    def test_extra_node_rejected_before_any_mutation(self, ring_snapshot):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        before = fingerprint(verifier)
        bigger = bgp_snapshot(ring(5))
        with pytest.raises(ConfigError):
            verifier.verify_snapshot(bigger)
        assert fingerprint(verifier) == before

    def test_different_links_rejected_before_any_mutation(
        self, ring_snapshot
    ):
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        before = fingerprint(verifier)
        # line(4) has the same node names r0..r3 but a different link set.
        rewired = ospf_snapshot(line(4))
        with pytest.raises(ConfigError):
            verifier.verify_snapshot(rewired)
        assert fingerprint(verifier) == before


class TestOptions:
    def test_negative_audit_every_rejected(self, ring_snapshot):
        with pytest.raises(ValueError):
            RealConfig(ring_snapshot, audit_every=-1)

    def test_non_convergence_still_propagates(self, ring_snapshot):
        """The transaction re-raises whatever aborted it (it must not
        swallow engine errors after rolling back)."""
        plan = FaultPlan(
            FaultSpec("generation", exception=RuntimeError("did not converge"))
        )
        verifier = RealConfig(ring_snapshot, policies=make_policies())
        before = fingerprint(verifier)
        from repro.workloads import link_failures

        change = link_failures(ring_snapshot, seed=3)[0]
        with inject(plan):
            with pytest.raises(RuntimeError, match="did not converge"):
                verifier.apply_changes([change])
        assert fingerprint(verifier) == before
