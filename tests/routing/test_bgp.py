"""BGP semantics via the incremental control plane."""

import pytest

from repro.config.changes import (
    AddBgpNetwork,
    RemoveBgpNeighbor,
    SetLocalPref,
    ShutdownInterface,
    apply_changes,
)
from repro.config.schema import RouteMap, RouteMapClause
from repro.net.addr import Prefix
from repro.net.topologies import line, ring
from repro.routing.program import ControlPlane
from repro.routing.types import ACCEPT
from repro.workloads import bgp_snapshot


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


@pytest.fixture(scope="module")
def ring5():
    return ring(5)


@pytest.fixture(scope="module")
def ring5_cp(ring5):
    cp = ControlPlane()
    cp.update_to(bgp_snapshot(ring5))
    return cp


class TestPropagation:
    def test_all_prefixes_everywhere(self, ring5, ring5_cp):
        fib = fib_map(ring5_cp)
        for node in ring5.topology.node_names():
            for owner, prefixes in ring5.host_prefixes.items():
                for prefix in prefixes:
                    assert (node, str(prefix)) in fib

    def test_shortest_as_path_preferred(self, ring5_cp):
        fib = fib_map(ring5_cp)
        # Ring of 5: r0's route to r1 (1 hop via eth1) not via the long way.
        assert fib[("r0", "172.16.1.0/24")] == ["eth1"]
        assert fib[("r0", "172.16.4.0/24")] == ["eth0"]

    def test_odd_ring_has_no_ecmp_for_adjacent(self, ring5_cp):
        fib = fib_map(ring5_cp)
        # 5-ring: 2 hops one way vs 3 the other -> single path.
        assert len(fib[("r0", "172.16.2.0/24")]) == 1

    def test_even_ring_multipath(self):
        labeled = ring(4)
        cp = ControlPlane()
        cp.update_to(bgp_snapshot(labeled))
        fib = fib_map(cp)
        assert fib[("r0", "172.16.2.0/24")] == ["eth0", "eth1"]

    def test_own_prefix_accepted_locally(self, ring5_cp):
        fib = fib_map(ring5_cp)
        assert fib[("r0", "172.16.0.0/24")] == [ACCEPT]


class TestLocalPref:
    def test_lp_overrides_path_length(self, ring5):
        snap = bgp_snapshot(ring5)
        cp = ControlPlane()
        cp.update_to(snap)
        # r0 prefers everything learned on eth0 (from r4).  r2's prefix
        # flips to the long way; r1's prefix cannot — r4's own best route
        # to it runs through r0, so loop prevention stops r4 from offering
        # it back to r0.
        snap2, _ = apply_changes(snap, [SetLocalPref("r0", "eth0", 150)])
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.2.0/24")] == ["eth0"]
        assert fib[("r0", "172.16.1.0/24")] == ["eth1"]

    def test_lp_scoped_to_prefix(self, ring5):
        snap = bgp_snapshot(ring5)
        target = Prefix.parse("172.16.2.0/24")
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(
            snap, [SetLocalPref("r0", "eth0", 150, match_prefix=target)]
        )
        cp.update_to(snap2)
        fib = fib_map(cp)
        # Scoped: only 172.16.2.0/24 is boosted onto eth0.  The route
        # map's implicit deny drops every other prefix learned on eth0,
        # so r3's prefix (previously best via eth0) reroutes to eth1.
        assert fib[("r0", "172.16.2.0/24")] == ["eth0"]
        assert fib[("r0", "172.16.3.0/24")] == ["eth1"]
        assert fib[("r0", "172.16.1.0/24")] == ["eth1"]

    def test_lp_is_local_to_the_router(self, ring5):
        snap = bgp_snapshot(ring5)
        snap2, _ = apply_changes(snap, [SetLocalPref("r0", "eth0", 150)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        # r2 is unaffected by r0's import preference.
        assert fib[("r2", "172.16.1.0/24")] == ["eth0"]


class TestPolicyFiltering:
    def test_inbound_deny_drops_routes(self, ring5):
        snap = bgp_snapshot(ring5).clone()
        device = snap.device("r0")
        device.route_maps["DENY"] = RouteMap(
            "DENY", clauses=[RouteMapClause(10, "deny")]
        )
        device.bgp.neighbors["eth0"].route_map_in = "DENY"
        device.bgp.neighbors["eth1"].route_map_in = "DENY"
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        # r0 learns nothing; its own prefix still accepted.
        assert fib[("r0", "172.16.0.0/24")] == [ACCEPT]
        assert ("r0", "172.16.2.0/24") not in fib

    def test_outbound_deny_stops_export(self, ring5):
        snap = bgp_snapshot(ring5).clone()
        device = snap.device("r1")
        device.route_maps["NOEXPORT"] = RouteMap(
            "NOEXPORT",
            clauses=[
                RouteMapClause(
                    10, "deny", match_prefix=Prefix.parse("172.16.1.0/24")
                ),
                RouteMapClause(20, "permit"),
            ],
        )
        for neighbor in device.bgp.neighbors.values():
            neighbor.route_map_out = "NOEXPORT"
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        # r1's own prefix is never exported -> unreachable elsewhere.
        assert ("r0", "172.16.1.0/24") not in fib
        assert ("r2", "172.16.1.0/24") not in fib
        # Transit routes still flow through r1.
        assert ("r0", "172.16.2.0/24") in fib


class TestSessionsAndOrigination:
    def test_remote_as_mismatch_no_session(self, ring5):
        snap = bgp_snapshot(ring5).clone()
        snap.device("r0").bgp.neighbors["eth1"].remote_as = 64999  # wrong
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        # r0 <-> r1 session dead; r0 reaches r1's prefix the long way.
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]

    def test_neighbor_removal(self, ring5):
        snap = bgp_snapshot(ring5)
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(snap, [RemoveBgpNeighbor("r0", "eth1")])
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]

    def test_network_statement_origination(self, ring5):
        snap = bgp_snapshot(ring5)
        extra = Prefix.parse("192.168.7.0/24")
        snap2, _ = apply_changes(snap, [AddBgpNetwork("r3", extra)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        # Announced everywhere; not accepted at r3 (not connected there).
        assert ("r0", str(extra)) in fib
        assert ("r3", str(extra)) not in fib

    def test_loop_prevention(self):
        """In a triangle, no route's AS path may revisit an AS: routes are
        stable and minimal (this would diverge without loop prevention)."""
        labeled = ring(3)
        cp = ControlPlane()
        cp.update_to(bgp_snapshot(labeled))
        fib = fib_map(cp)
        assert fib[("r0", "172.16.1.0/24")] == ["eth1"]
        assert fib[("r0", "172.16.2.0/24")] == ["eth0"]

    def test_link_failure_reroutes(self, ring5):
        snap = bgp_snapshot(ring5)
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(snap, [ShutdownInterface("r0", "eth1")])
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]

    def test_line_endpoints(self):
        labeled = line(4)
        cp = ControlPlane()
        cp.update_to(bgp_snapshot(labeled))
        fib = fib_map(cp)
        assert fib[("r0", "172.16.3.0/24")] == ["eth1"]
        assert fib[("r3", "172.16.0.0/24")] == ["eth0"]
