"""BGP route aggregation (aggregate-address) across the stack."""

import pytest

from repro.baseline import simulate
from repro.config.changes import (
    AddBgpAggregate,
    ChangeError,
    RemoveBgpAggregate,
    RemoveBgpNetwork,
    ShutdownInterface,
    apply_changes,
)
from repro.config.lang import parse_device, render_device
from repro.net.addr import Prefix
from repro.net.headerspace import header
from repro.net.topologies import line, ring
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot

#: The host prefixes 172.16.0.0/24 .. 172.16.3.0/24 of ring(4)/line(4) all
#: fall inside this aggregate.
AGG = Prefix.parse("172.16.0.0/16")


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestDialect:
    def test_round_trip(self):
        text = (
            "hostname x\ninterface e0\nrouter bgp 1\n"
            " aggregate-address 172.16.0.0/16\n"
        )
        device = parse_device(text)
        assert device.bgp.aggregates == [AGG]
        assert parse_device(render_device(device)) == device


class TestOrigination:
    def test_aggregate_advertised_when_contributor_exists(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        # r2 aggregates the whole 172.16/16 (it originates 172.16.2.0/24).
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r2", AGG)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", str(AGG))] == ["eth1"]
        assert set(cp.fib()) == simulate(snap2).fib

    def test_aggregate_withdrawn_with_last_contributor(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r2", AGG)])
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", str(AGG)) in fib_map(cp)
        # Remove r2's only in-range origination: contributors via peers
        # (172.16.0/24, 172.16.1/24 learned from r1) still count, so fail
        # the link too.
        snap3, _ = apply_changes(
            snap2,
            [
                RemoveBgpNetwork("r2", labeled.host_prefixes["r2"][0]),
                ShutdownInterface("r2", "eth0"),
            ],
        )
        cp.update_to(snap3)
        assert ("r0", str(AGG)) not in fib_map(cp)
        assert set(cp.fib()) == simulate(snap3).fib

    def test_aggregate_itself_is_not_a_contributor(self):
        """With no more-specific route at all, the aggregate never
        self-supports."""
        labeled = line(2)
        snap = bgp_snapshot(labeled)
        for name in ("r0", "r1"):
            snap.device(name).bgp.networks.clear()
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r0", AGG)])
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r1", str(AGG)) not in fib_map(cp)
        assert set(cp.fib()) == simulate(snap2).fib

    def test_specifics_still_advertised(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r2", AGG)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert ("r0", "172.16.2.0/24") in fib  # the more specific survives

    def test_lpm_prefers_specific_over_aggregate(self):
        """Traffic to a covered /24 follows the specific route; traffic to
        an uncovered part of the aggregate follows the aggregate toward
        the aggregating router."""
        labeled = ring(4)
        snap = bgp_snapshot(labeled)
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r2", AGG)])
        from repro.core.realconfig import RealConfig
        from repro.policy.trace import trace_packet

        verifier = RealConfig(snap2, endpoints=["r0", "r1", "r2", "r3"])
        covered = header(Prefix.parse("172.16.1.0/24").first() + 1)
        traces = trace_packet(verifier.model, covered, "r0")
        assert all(t.path[-1] == "r1" for t in traces)
        uncovered = header(Prefix.parse("172.16.99.0/24").first() + 1)
        traces = trace_packet(verifier.model, uncovered, "r0")
        # Follows the aggregate to r2, which blackholes it (no specific).
        assert all(t.path[-1] == "r2" and not t.delivered() for t in traces)


class TestChanges:
    def test_duplicate_rejected(self):
        labeled = line(2)
        snap = bgp_snapshot(labeled)
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r0", AGG)])
        with pytest.raises(ChangeError):
            apply_changes(snap2, [AddBgpAggregate("r0", AGG)])

    def test_remove_missing_rejected(self):
        labeled = line(2)
        snap = bgp_snapshot(labeled)
        with pytest.raises(ChangeError):
            apply_changes(snap, [RemoveBgpAggregate("r0", AGG)])

    def test_invert_round_trip(self):
        labeled = line(2)
        snap = bgp_snapshot(labeled)
        change = AddBgpAggregate("r0", AGG)
        inverse = change.invert(snap)
        snap2, diff = apply_changes(snap, [change, inverse])
        assert not snap2.device("r0").bgp.aggregates
        assert diff.is_empty()

    def test_incremental_equals_scratch(self):
        labeled = ring(4)
        snap = bgp_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(snap, [AddBgpAggregate("r1", AGG)])
        cp.update_to(snap2)
        assert set(cp.fib()) == simulate(snap2).fib
        snap3, _ = apply_changes(snap2, [RemoveBgpAggregate("r1", AGG)])
        cp.update_to(snap3)
        assert set(cp.fib()) == simulate(snap3).fib
