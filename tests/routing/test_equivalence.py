"""Oracle equivalence: the incremental engine's FIB must equal the
independent from-scratch simulator's FIB — initially and after arbitrary
change sequences.  This is the correctness backbone of the reproduction:
the baseline shares no code with the differential engine."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline import simulate
from repro.baseline.path_vector import BgpDivergenceError
from repro.ddlog.convergence import NonConvergenceError
from repro.config.changes import (
    EnableInterface,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.net.topologies import grid, line, random_connected, ring
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, ospf_snapshot


def assert_equivalent(cp, snapshot):
    engine_fib = set(cp.fib())
    oracle_fib = simulate(snapshot).fib
    missing = oracle_fib - engine_fib
    extra = engine_fib - oracle_fib
    assert not missing and not extra, (
        f"engine != oracle: missing={sorted(missing)[:5]} "
        f"extra={sorted(extra)[:5]}"
    )


TOPOLOGIES = {
    "line4": lambda: line(4),
    "ring5": lambda: ring(5),
    "grid23": lambda: grid(2, 3),
    "rand8": lambda: random_connected(8, 4, seed=3),
}


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
class TestInitialEquivalence:
    def test_initial_fib_matches(self, topo_name, protocol):
        labeled = TOPOLOGIES[topo_name]()
        snapshot = (
            ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
        )
        cp = ControlPlane()
        cp.update_to(snapshot)
        assert_equivalent(cp, snapshot)


def random_change(rng, labeled, snapshot, protocol):
    """One random applicable change."""
    interfaces = [
        iface.id
        for iface in labeled.topology.interfaces()
        if labeled.topology.neighbor_of(iface.id) is not None
    ]
    target = rng.choice(interfaces)
    kind = rng.random()
    if kind < 0.45:
        if snapshot.device(target.node).interface(target.name).shutdown:
            return EnableInterface(target.node, target.name)
        return ShutdownInterface(target.node, target.name)
    if protocol == "ospf":
        return SetOspfCost(target.node, target.name, rng.choice([1, 10, 100]))
    return SetLocalPref(target.node, target.name, rng.choice([50, 100, 150, 200]))


def _baseline_diverges(snapshot) -> bool:
    try:
        simulate(snapshot)
        return False
    except BgpDivergenceError:
        return True


@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestChangeSequenceEquivalence:
    def test_sequence(self, protocol, seed):
        rng = random.Random(seed)
        labeled = ring(5) if seed % 2 else random_connected(7, 3, seed=seed)
        snapshot = (
            ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
        )
        cp = ControlPlane()
        cp.update_to(snapshot)
        for _ in range(8):
            change = random_change(rng, labeled, snapshot, protocol)
            snapshot, _ = apply_changes(snapshot, [change])
            try:
                cp.update_to(snapshot)
            except NonConvergenceError:
                # Random LP assignments can form a dispute wheel with no
                # stable path assignment.  Then the oracle must diverge too
                # — agreement on divergence is agreement — and the sequence
                # ends (the engine state is mid-fixpoint).
                assert _baseline_diverges(snapshot)
                return
            assert_equivalent(cp, snapshot)


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 8),
    extra=st.integers(0, 4),
    steps=st.integers(1, 5),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_random_topology_and_changes(seed, n, extra, steps):
    """Hypothesis-driven: random topology, random protocol, random change
    sequence — incremental FIB always equals the oracle."""
    rng = random.Random(seed)
    labeled = random_connected(n, extra, seed=seed)
    protocol = rng.choice(["ospf", "bgp"])
    snapshot = (
        ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
    )
    cp = ControlPlane()
    cp.update_to(snapshot)
    assert_equivalent(cp, snapshot)
    for _ in range(steps):
        change = random_change(rng, labeled, snapshot, protocol)
        snapshot, _ = apply_changes(snapshot, [change])
        try:
            cp.update_to(snapshot)
        except NonConvergenceError:
            assert _baseline_diverges(snapshot)
            return
    assert_equivalent(cp, snapshot)


def test_fattree_equivalence_after_paper_changes(fattree4):
    """The paper's exact change types on the paper's topology shape."""
    for protocol, make in (("ospf", ospf_snapshot), ("bgp", bgp_snapshot)):
        snapshot = make(fattree4)
        cp = ControlPlane()
        cp.update_to(snapshot)
        changes = [ShutdownInterface("core0", "eth1")]
        if protocol == "ospf":
            changes.append(SetOspfCost("agg0_0", "up0", 100))
        else:
            changes.append(SetLocalPref("edge1_1", "up0", 150))
        for change in changes:
            snapshot, _ = apply_changes(snapshot, [change])
            cp.update_to(snapshot)
            assert_equivalent(cp, snapshot)
