"""Tests for fact extraction and diffing."""

from repro.config.changes import (
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.routing.facts import INPUT_RELATIONS, diff_facts, extract_facts


class TestExtraction:
    def test_all_relations_present(self, line3_ospf):
        facts = extract_facts(line3_ospf)
        assert set(facts) == set(INPUT_RELATIONS)

    def test_links_bidirectional(self, line3_ospf):
        facts = extract_facts(line3_ospf)
        assert ("r0", "eth1", "r1", "eth0") in facts["link"]
        assert ("r1", "eth0", "r0", "eth1") in facts["link"]

    def test_up_excludes_shutdown(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        facts = extract_facts(snap)
        assert ("r1", "eth1") not in facts["up"]
        assert ("r1", "eth0") in facts["up"]

    def test_ospf_iface_carries_cost(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [SetOspfCost("r0", "eth1", 42)])
        facts = extract_facts(snap)
        assert ("r0", "eth1", 42) in facts["ospf_iface"]

    def test_bgp_policies_always_emitted(self, ring4_bgp):
        facts = extract_facts(ring4_bgp)
        neighbors = facts["bgp_neigh"]
        in_policies = {(n, i) for n, i, _ in facts["bgp_policy_in"]}
        assert {(n, i) for n, i, _ in neighbors} == in_policies

    def test_default_policy_is_empty_tuple(self, ring4_bgp):
        facts = extract_facts(ring4_bgp)
        assert all(policy == () for _, _, policy in facts["bgp_policy_in"])

    def test_lp_change_replaces_policy_fact(self, ring4_bgp):
        snap, _ = apply_changes(ring4_bgp, [SetLocalPref("r0", "eth0", 150)])
        old = extract_facts(ring4_bgp)
        new = extract_facts(snap)
        changes = diff_facts(old, new)
        assert set(changes) == {"bgp_policy_in"}
        inserted, deleted = changes["bgp_policy_in"]
        assert len(inserted) == 1 and len(deleted) == 1

    def test_ospf_snapshot_has_no_bgp_facts(self, line3_ospf):
        facts = extract_facts(line3_ospf)
        assert not facts["bgp_node"]
        assert not facts["bgp_neigh"]


class TestDiff:
    def test_identity_diff_empty(self, line3_ospf):
        facts = extract_facts(line3_ospf)
        assert diff_facts(facts, facts) == {}

    def test_shutdown_diff_is_one_up_fact(self, line3_ospf):
        snap, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        changes = diff_facts(extract_facts(line3_ospf), extract_facts(snap))
        assert set(changes) == {"up"}
        inserted, deleted = changes["up"]
        assert not inserted
        assert deleted == {("r1", "eth1")}

    def test_diff_from_empty_is_full_load(self, line3_ospf):
        changes = diff_facts({}, extract_facts(line3_ospf))
        inserted, deleted = changes["up"]
        assert not deleted and inserted
