"""OSPF semantics via the incremental control plane."""

import pytest

from repro.config.changes import (
    SetOspfCost,
    ShutdownInterface,
    apply_changes,
)
from repro.net.topologies import grid, line, ring
from repro.routing.program import ControlPlane
from repro.routing.types import ACCEPT
from repro.workloads import ospf_snapshot


def fib_map(cp):
    """(node, prefix) -> sorted out interfaces."""
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


@pytest.fixture(scope="module")
def line5_cp():
    labeled = line(5)
    cp = ControlPlane()
    cp.update_to(ospf_snapshot(labeled))
    return labeled, cp


class TestBasics:
    def test_connected_prefixes_accept(self, line5_cp):
        _, cp = line5_cp
        fib = fib_map(cp)
        assert fib[("r0", "172.16.0.0/24")] == [ACCEPT]
        assert fib[("r4", "172.16.4.0/24")] == [ACCEPT]

    def test_remote_host_prefix_routed_towards_owner(self, line5_cp):
        _, cp = line5_cp
        fib = fib_map(cp)
        assert fib[("r0", "172.16.4.0/24")] == ["eth1"]
        assert fib[("r4", "172.16.0.0/24")] == ["eth0"]
        assert fib[("r2", "172.16.0.0/24")] == ["eth0"]
        assert fib[("r2", "172.16.4.0/24")] == ["eth1"]

    def test_link_subnets_routed(self, line5_cp):
        _, cp = line5_cp
        fib = fib_map(cp)
        # r0 reaches the r3-r4 link subnet via eth1.
        assert fib[("r0", "10.0.0.12/30")] == ["eth1"]

    def test_every_node_reaches_every_host_prefix(self, line5_cp):
        labeled, cp = line5_cp
        fib = fib_map(cp)
        for node in labeled.topology.node_names():
            for owner, prefixes in labeled.host_prefixes.items():
                for prefix in prefixes:
                    assert (node, str(prefix)) in fib


class TestEcmp:
    def test_ring_even_gives_two_paths(self):
        labeled = ring(4)
        cp = ControlPlane()
        cp.update_to(ospf_snapshot(labeled))
        fib = fib_map(cp)
        # r0 -> r2's prefix: two equal-cost paths around the ring.
        assert fib[("r0", "172.16.2.0/24")] == ["eth0", "eth1"]
        # r0 -> r1's prefix: single shortest path.
        assert fib[("r0", "172.16.1.0/24")] == ["eth1"]

    def test_grid_corner_to_corner_ecmp(self):
        labeled = grid(2, 2)
        cp = ControlPlane()
        cp.update_to(ospf_snapshot(labeled))
        fib = fib_map(cp)
        prefix = str(labeled.host_prefixes["g1_1"][0])
        assert len(fib[("g0_0", prefix)]) == 2


class TestCostChanges:
    def test_lc_change_moves_traffic(self):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        # Penalize r0's eth1 (toward r1): r2's prefix now only via eth0.
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 100)])
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.2.0/24")] == ["eth0"]
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]

    def test_cost_is_directional(self):
        """OSPF uses the sending interface's cost: penalizing r0->r1 must
        not affect r1->r0 forwarding."""
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 100)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r1", "172.16.0.0/24")] == ["eth0"]

    def test_restore_cost_restores_fib(self):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        before = fib_map(cp)
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 100)])
        cp.update_to(snap2)
        cp.update_to(snap)
        assert fib_map(cp) == before


class TestLinkFailure:
    def test_failure_reroutes(self):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(snap, [ShutdownInterface("r0", "eth1")])
        delta = cp.update_to(snap2)
        assert not delta.is_empty()
        fib = fib_map(cp)
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]

    def test_partition_blackholes(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        snap2, _ = apply_changes(snap, [ShutdownInterface("r1", "eth1")])
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert ("r0", "172.16.2.0/24") not in fib
        assert ("r2", "172.16.0.0/24") not in fib

    def test_one_end_down_kills_both_directions(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(snap, [ShutdownInterface("r2", "eth0")])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert ("r2", "172.16.0.0/24") not in fib
        assert ("r0", "172.16.2.0/24") not in fib

    def test_single_node_has_only_connected(self):
        labeled = line(1)
        cp = ControlPlane()
        cp.update_to(ospf_snapshot(labeled))
        fib = fib_map(cp)
        assert fib == {("r0", "172.16.0.0/24"): [ACCEPT]}
