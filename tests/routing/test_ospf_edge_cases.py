"""OSPF semantic edge cases: asymmetric costs, partial enablement, stub
interfaces, and adjacency requirements."""


from repro.baseline import simulate
from repro.config.changes import SetOspfCost, apply_changes
from repro.net.topologies import line, ring
from repro.routing.program import ControlPlane
from repro.workloads import ospf_snapshot


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestAsymmetricCosts:
    def test_forward_and_reverse_paths_differ(self):
        """Penalizing one direction of one link makes routing asymmetric:
        r0 -> r2 avoids it while r2 -> r0 still uses it."""
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        # r0's eth1 sends toward r1; penalize only that direction.
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 10)])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.1.0/24")] == ["eth0"]  # long way, cost 3
        assert fib[("r1", "172.16.0.0/24")] == ["eth0"]  # direct, cost 1
        assert set(cp.fib()) == simulate(snap2).fib

    def test_ecmp_broken_by_one_direction(self):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        assert fib_map(cp)[("r0", "172.16.2.0/24")] == ["eth0", "eth1"]
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 2)])
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", "172.16.2.0/24")] == ["eth0"]

    def test_equalizing_costs_restores_ecmp(self):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 2)])
        cp = ControlPlane()
        cp.update_to(snap2)
        snap3, _ = apply_changes(snap2, [SetOspfCost("r0", "eth0", 2)])
        cp.update_to(snap3)
        assert fib_map(cp)[("r0", "172.16.2.0/24")] == ["eth0", "eth1"]
        assert set(cp.fib()) == simulate(snap3).fib


class TestPartialEnablement:
    def test_ospf_disabled_interface_forms_no_adjacency(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        # Disable OSPF on r1's eth1 (toward r2): the r1-r2 adjacency dies
        # even though the interface stays administratively up.
        snap.device("r1").interfaces["eth1"].ospf_enabled = False
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        assert ("r0", "172.16.2.0/24") not in fib
        # The link subnet is no longer advertised by r1 either.
        assert set(cp.fib()) == simulate(snap).fib

    def test_stub_interface_prefix_still_advertised(self):
        """host0 has no neighbor; its prefix is injected as long as OSPF is
        enabled on it."""
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        assert ("r0", "172.16.2.0/24") in fib_map(cp)

    def test_disabling_stub_interface_withdraws_prefix(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap.device("r2").interfaces["host0"].ospf_enabled = False
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        assert ("r0", "172.16.2.0/24") not in fib
        # Still connected locally at r2.
        assert ("r2", "172.16.2.0/24") in fib
        assert set(cp.fib()) == simulate(snap).fib

    def test_cost_on_stub_interface_is_inert_for_transit(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        before = fib_map(cp)
        snap2, _ = apply_changes(snap, [SetOspfCost("r2", "host0", 100)])
        cp.update_to(snap2)
        assert fib_map(cp) == before


class TestMetricAccumulation:
    def test_costs_accumulate_along_path(self):
        """With per-hop costs 2+3, the alternative 4-hop unit-cost path
        wins only when it is cheaper."""
        labeled = ring(5)
        snap = ospf_snapshot(labeled)
        # r0 -> r1 direct (eth1) cost becomes 5; the way around is 4 hops
        # of cost 1 = 4 < 5.
        snap2, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 5)])
        cp = ControlPlane()
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", "172.16.1.0/24")] == ["eth0"]
        # Cost 4 direct would tie the 4-hop path: ECMP both ways.
        snap3, _ = apply_changes(snap, [SetOspfCost("r0", "eth1", 4)])
        cp.update_to(snap3)
        assert fib_map(cp)[("r0", "172.16.1.0/24")] == ["eth0", "eth1"]
        assert set(cp.fib()) == simulate(snap3).fib
