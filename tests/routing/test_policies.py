"""Tests for route-map encoding and evaluation."""

from repro.config.schema import RouteMap, RouteMapClause
from repro.net.addr import Prefix
from repro.routing.policies import (
    DEFAULT_LOCAL_PREF,
    PERMIT_ALL,
    apply_policy,
    encode_route_map,
    permits,
)


def key(prefix_text):
    p = Prefix.parse(prefix_text)
    return p.network, p.length


class TestEncoding:
    def test_none_is_permit_all(self):
        assert encode_route_map(None) == PERMIT_ALL

    def test_clause_order_by_seq(self):
        rm = RouteMap(
            "RM",
            clauses=[RouteMapClause(20, "deny"), RouteMapClause(10, "permit")],
        )
        encoded = encode_route_map(rm)
        assert [c[0] for c in encoded] == [10, 20]

    def test_encoding_is_hashable(self):
        rm = RouteMap(
            "RM",
            clauses=[
                RouteMapClause(
                    10, "permit", match_prefix=Prefix.parse("10.0.0.0/8"),
                    set_local_pref=150,
                )
            ],
        )
        hash(encode_route_map(rm))


class TestApplication:
    def test_permit_all_passes_unchanged(self):
        net, plen = key("10.0.0.0/24")
        assert apply_policy(PERMIT_ALL, net, plen, 77) == 77

    def test_set_local_pref(self):
        rm = RouteMap("RM", clauses=[RouteMapClause(10, "permit", set_local_pref=150)])
        policy = encode_route_map(rm)
        net, plen = key("10.0.0.0/24")
        assert apply_policy(policy, net, plen, DEFAULT_LOCAL_PREF) == 150

    def test_match_scoping(self):
        rm = RouteMap(
            "RM",
            clauses=[
                RouteMapClause(
                    10, "permit",
                    match_prefix=Prefix.parse("10.0.0.0/8"),
                    set_local_pref=150,
                ),
                RouteMapClause(20, "permit"),
            ],
        )
        policy = encode_route_map(rm)
        inside = key("10.1.0.0/16")
        outside = key("11.0.0.0/16")
        assert apply_policy(policy, *inside, 100) == 150
        assert apply_policy(policy, *outside, 100) == 100

    def test_first_match_wins(self):
        rm = RouteMap(
            "RM",
            clauses=[
                RouteMapClause(10, "deny", match_prefix=Prefix.parse("10.0.0.0/8")),
                RouteMapClause(20, "permit", set_local_pref=200),
            ],
        )
        policy = encode_route_map(rm)
        assert apply_policy(policy, *key("10.0.0.0/24"), 100) is None
        assert apply_policy(policy, *key("11.0.0.0/24"), 100) == 200

    def test_implicit_deny(self):
        rm = RouteMap(
            "RM",
            clauses=[
                RouteMapClause(10, "permit", match_prefix=Prefix.parse("10.0.0.0/8"))
            ],
        )
        policy = encode_route_map(rm)
        assert apply_policy(policy, *key("11.0.0.0/24"), 100) is None

    def test_match_requires_containment(self):
        """A clause matching 10.0.0.0/24 must not match the wider /8."""
        rm = RouteMap(
            "RM",
            clauses=[
                RouteMapClause(
                    10, "permit", match_prefix=Prefix.parse("10.0.0.0/24")
                )
            ],
        )
        policy = encode_route_map(rm)
        assert apply_policy(policy, *key("10.0.0.0/8"), 100) is None
        assert apply_policy(policy, *key("10.0.0.0/25"), 100) == 100

    def test_permits(self):
        rm = RouteMap("RM", clauses=[RouteMapClause(10, "deny")])
        assert not permits(encode_route_map(rm), *key("10.0.0.0/8"))
        assert permits(PERMIT_ALL, *key("10.0.0.0/8"))
