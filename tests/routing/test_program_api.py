"""Public API surface of the ControlPlane wrapper."""


from repro.config.changes import ShutdownInterface, apply_changes
from repro.routing.program import ControlPlane, FibDelta
from repro.routing.types import FibEntry
from repro.net.addr import Prefix


class TestFibDelta:
    def test_empty(self):
        delta = FibDelta()
        assert delta.is_empty()
        assert delta.size() == 0
        assert delta.summary() == "+0/-0 forwarding rules"

    def test_counts(self):
        entry = FibEntry("r0", Prefix.parse("10.0.0.0/8"), "eth0")
        delta = FibDelta(inserted=[entry], deleted=[entry, entry])
        assert not delta.is_empty()
        assert delta.size() == 3
        assert delta.summary() == "+1/-2 forwarding rules"


class TestControlPlaneApi:
    def test_load_alias(self, line3_ospf):
        control_plane = ControlPlane()
        delta = control_plane.load(line3_ospf)
        assert delta.inserted and not delta.deleted

    def test_fib_sorted_and_positive(self, line3_ospf):
        control_plane = ControlPlane()
        control_plane.load(line3_ospf)
        fib = control_plane.fib()
        assert fib == sorted(fib)

    def test_take_fib_delta_drains(self, line3_ospf):
        control_plane = ControlPlane()
        control_plane.load(line3_ospf)
        assert control_plane.take_fib_delta().is_empty()

    def test_last_fact_changes_counts(self, line3_ospf):
        control_plane = ControlPlane()
        control_plane.load(line3_ospf)
        initial_facts = control_plane.last_fact_changes
        assert initial_facts > 0
        changed, _ = apply_changes(line3_ospf, [ShutdownInterface("r1", "eth1")])
        control_plane.update_to(changed)
        assert control_plane.last_fact_changes == 1  # one 'up' fact removed

    def test_state_size_positive_after_load(self, line3_ospf):
        control_plane = ControlPlane()
        control_plane.load(line3_ospf)
        assert control_plane.state_size() > 0

    def test_noop_update(self, line3_ospf):
        control_plane = ControlPlane()
        control_plane.load(line3_ospf)
        delta = control_plane.update_to(line3_ospf.clone())
        assert delta.is_empty()
        assert control_plane.last_fact_changes == 0
