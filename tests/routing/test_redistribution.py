"""Route redistribution semantics."""


from repro.config.changes import (
    AddRedistribution,
    AddStaticRoute,
    apply_changes,
)
from repro.config.schema import (
    BgpNeighbor,
    BgpProcess,
    OspfProcess,
    Snapshot,
)
from repro.net.addr import Prefix
from repro.net.topologies import line
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, ospf_snapshot
from repro.workloads.fattree_configs import asn_map, _base_device


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestStaticIntoOspf:
    def test_external_propagates(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        external = Prefix.parse("203.0.113.0/24")
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRoute("r2", external, "host0"),
                AddRedistribution("r2", "ospf", "static"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", str(external))] == ["eth1"]
        assert fib[("r1", str(external))] == ["eth1"]
        # The redistributing router itself uses the static route.
        assert fib[("r2", str(external))] == ["host0"]

    def test_without_redistribution_not_propagated(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        external = Prefix.parse("203.0.113.0/24")
        snap2, _ = apply_changes(snap, [AddStaticRoute("r2", external, "host0")])
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", str(external)) not in fib_map(cp)


class TestStaticIntoBgp:
    def test_external_propagates(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        external = Prefix.parse("203.0.113.0/24")
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRoute("r2", external, "host0"),
                AddRedistribution("r2", "bgp", "static"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", str(external))] == ["eth1"]


class TestConnectedIntoBgp:
    def test_link_subnets_become_reachable(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        cp = ControlPlane()
        cp.update_to(snap)
        # Without redistribution, r0 does not know the r1-r2 link subnet.
        assert ("r0", "10.0.0.4/30") not in fib_map(cp)
        snap2, _ = apply_changes(
            snap, [AddRedistribution("r1", "bgp", "connected")]
        )
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", "10.0.0.4/30")] == ["eth1"]


def mixed_protocol_snapshot():
    """r0 -- r1 run OSPF; r1 -- r2 run BGP; r1 redistributes both ways."""
    labeled = line(3)
    snap = Snapshot(labeled.topology)
    asns = asn_map(labeled)
    for name in ("r0", "r1", "r2"):
        device = _base_device(labeled, name)
        snap.add_device(device)
    # OSPF side: r0 fully, r1's eth0 + host0.
    for name, ifaces in (("r0", ["eth1", "host0"]), ("r1", ["eth0", "host0"])):
        device = snap.device(name)
        device.ospf = OspfProcess()
        for iface in ifaces:
            device.interfaces[iface].ospf_enabled = True
    # BGP side: r1's eth1 <-> r2's eth0.
    r1, r2 = snap.device("r1"), snap.device("r2")
    r1.bgp = BgpProcess(asn=asns["r1"])
    r1.bgp.add_neighbor(BgpNeighbor("eth1", asns["r2"]))
    r2.bgp = BgpProcess(asn=asns["r2"])
    r2.bgp.add_neighbor(BgpNeighbor("eth0", asns["r1"]))
    r2.bgp.networks.append(labeled.host_prefixes["r2"][0])
    snap.validate()
    return labeled, snap


class TestCrossProtocol:
    def test_bgp_into_ospf(self):
        labeled, snap = mixed_protocol_snapshot()
        snap2, _ = apply_changes(snap, [AddRedistribution("r1", "ospf", "bgp")])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        # r0 (OSPF-only) learns r2's prefix through r1's redistribution.
        assert fib[("r0", "172.16.2.0/24")] == ["eth1"]

    def test_ospf_into_bgp(self):
        labeled, snap = mixed_protocol_snapshot()
        snap2, _ = apply_changes(snap, [AddRedistribution("r1", "bgp", "ospf")])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        # r2 (BGP-only) learns r0's prefix through r1's redistribution.
        assert fib[("r2", "172.16.0.0/24")] == ["eth0"]

    def test_no_redistribution_no_leak(self):
        labeled, snap = mixed_protocol_snapshot()
        cp = ControlPlane()
        cp.update_to(snap)
        fib = fib_map(cp)
        assert ("r0", "172.16.2.0/24") not in fib
        assert ("r2", "172.16.0.0/24") not in fib
