"""Static route and connected-route semantics, and admin distance."""


from repro.config.changes import (
    AddStaticRoute,
    RemoveStaticRoute,
    ShutdownInterface,
    apply_changes,
)
from repro.net.addr import Prefix
from repro.net.topologies import line
from repro.routing.program import ControlPlane
from repro.routing.types import ACCEPT
from repro.workloads import ospf_snapshot


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestStatic:
    def test_default_route(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap, [AddStaticRoute("r0", Prefix.parse("0.0.0.0/0"), "eth1")]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "0.0.0.0/0")] == ["eth1"]

    def test_static_beats_ospf(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        # r0 statically points r2's prefix at its stub host0 interface.
        snap2, _ = apply_changes(
            snap, [AddStaticRoute("r0", Prefix.parse("172.16.2.0/24"), "host0")]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.2.0/24")] == ["host0"]

    def test_high_distance_static_loses_to_ospf(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRoute(
                    "r0", Prefix.parse("172.16.2.0/24"), "host0",
                    admin_distance=200,
                )
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.2.0/24")] == ["eth1"]

    def test_static_on_down_interface_inactive(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRoute("r0", Prefix.parse("9.9.9.0/24"), "host0"),
                ShutdownInterface("r0", "host0"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", "9.9.9.0/24") not in fib_map(cp)

    def test_static_removal(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        prefix = Prefix.parse("9.9.9.0/24")
        snap2, _ = apply_changes(snap, [AddStaticRoute("r0", prefix, "eth1")])
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", "9.9.9.0/24") in fib_map(cp)
        snap3, _ = apply_changes(snap2, [RemoveStaticRoute("r0", prefix, "eth1")])
        cp.update_to(snap3)
        assert ("r0", "9.9.9.0/24") not in fib_map(cp)


class TestConnected:
    def test_connected_beats_everything(self):
        labeled = line(2)
        snap = ospf_snapshot(labeled)
        # Static route for r0's own connected prefix: connected (AD 0) wins.
        snap2, _ = apply_changes(
            snap, [AddStaticRoute("r0", Prefix.parse("172.16.0.0/24"), "eth1")]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert fib[("r0", "172.16.0.0/24")] == [ACCEPT]

    def test_shutdown_interface_removes_connected(self):
        labeled = line(2)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(snap, [ShutdownInterface("r0", "host0")])
        cp = ControlPlane()
        cp.update_to(snap2)
        fib = fib_map(cp)
        assert ("r0", "172.16.0.0/24") not in fib

    def test_both_link_ends_have_connected_subnet(self):
        labeled = line(2)
        cp = ControlPlane()
        cp.update_to(ospf_snapshot(labeled))
        fib = fib_map(cp)
        assert fib[("r0", "10.0.0.0/30")] == [ACCEPT]
        assert fib[("r1", "10.0.0.0/30")] == [ACCEPT]
