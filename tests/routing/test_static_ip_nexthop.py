"""Static routes with IP next hops (recursive resolution via connected
subnets), across the config dialect, engine, baseline, and changes."""

import pytest

from repro.baseline import simulate
from repro.config.changes import (
    AddRedistribution,
    AddStaticRouteIp,
    RemoveStaticRouteIp,
    ShutdownInterface,
    apply_changes,
)
from repro.config.lang import parse_device, render_device
from repro.config.schema import ConfigError, StaticRoute
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topologies import line, ring
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, ospf_snapshot

EXTERNAL = Prefix.parse("203.0.113.0/24")


def fib_map(cp):
    out = {}
    for entry in cp.fib():
        out.setdefault((entry.node, str(entry.prefix)), []).append(
            entry.out_interface
        )
    return {k: sorted(v) for k, v in out.items()}


class TestSchema:
    def test_exactly_one_next_hop_required(self):
        with pytest.raises(ConfigError):
            StaticRoute(EXTERNAL)
        with pytest.raises(ConfigError):
            StaticRoute(EXTERNAL, "eth0", next_hop_ip=1)

    def test_lang_round_trip(self):
        text = "hostname x\ninterface e0\nip route 203.0.113.0/24 10.0.0.2 5\n"
        device = parse_device(text)
        route = device.static_routes[0]
        assert route.next_hop_ip == parse_ipv4("10.0.0.2")
        assert route.admin_distance == 5
        assert parse_device(render_device(device)) == device


class TestResolution:
    def test_resolves_to_covering_interface(self):
        # r0's eth1 is 10.0.0.1/30; point at the peer 10.0.0.2.
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap, [AddStaticRouteIp("r0", EXTERNAL, parse_ipv4("10.0.0.2"))]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", str(EXTERNAL))] == ["eth1"]

    def test_unresolvable_next_hop_inactive(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap, [AddStaticRouteIp("r0", EXTERNAL, parse_ipv4("8.8.8.8"))]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", str(EXTERNAL)) not in fib_map(cp)

    def test_shutdown_deactivates_route(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRouteIp("r0", EXTERNAL, parse_ipv4("10.0.0.2")),
                ShutdownInterface("r0", "eth1"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert ("r0", str(EXTERNAL)) not in fib_map(cp)

    def test_incremental_activation(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRouteIp("r0", EXTERNAL, parse_ipv4("10.0.0.2")),
                ShutdownInterface("r0", "eth1"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        from repro.config.changes import EnableInterface

        snap3, _ = apply_changes(snap2, [EnableInterface("r0", "eth1")])
        cp.update_to(snap3)
        assert fib_map(cp)[("r0", str(EXTERNAL))] == ["eth1"]

    def test_removal(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        change = AddStaticRouteIp("r0", EXTERNAL, parse_ipv4("10.0.0.2"))
        snap2, _ = apply_changes(snap, [change])
        cp = ControlPlane()
        cp.update_to(snap2)
        snap3, _ = apply_changes(snap2, [change.invert(snap2)])
        cp.update_to(snap3)
        assert ("r0", str(EXTERNAL)) not in fib_map(cp)

    def test_remove_missing_rejected(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        with pytest.raises(ConfigError):
            apply_changes(
                snap, [RemoveStaticRouteIp("r0", EXTERNAL, parse_ipv4("1.1.1.1"))]
            )


class TestOracleAgreement:
    @pytest.mark.parametrize("next_hop", ["10.0.0.2", "8.8.8.8"])
    def test_engine_matches_baseline(self, next_hop):
        labeled = ring(4)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap, [AddStaticRouteIp("r0", EXTERNAL, parse_ipv4(next_hop))]
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert set(cp.fib()) == simulate(snap2).fib

    def test_redistribution_of_ip_static_into_ospf(self):
        labeled = line(3)
        snap = ospf_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRouteIp("r2", EXTERNAL, parse_ipv4("10.0.0.5")),
                AddRedistribution("r2", "ospf", "static"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", str(EXTERNAL))] == ["eth1"]
        assert set(cp.fib()) == simulate(snap2).fib

    def test_redistribution_of_ip_static_into_bgp(self):
        labeled = line(3)
        snap = bgp_snapshot(labeled)
        snap2, _ = apply_changes(
            snap,
            [
                AddStaticRouteIp("r2", EXTERNAL, parse_ipv4("10.0.0.5")),
                AddRedistribution("r2", "bgp", "static"),
            ],
        )
        cp = ControlPlane()
        cp.update_to(snap2)
        assert fib_map(cp)[("r0", str(EXTERNAL))] == ["eth1"]
        assert set(cp.fib()) == simulate(snap2).fib
