"""Fixtures for the serving suite.

Everything runs on a small OSPF ring: link flaps reroute cleanly (no
lasting policy violations), so test outcomes isolate the serving
machinery rather than the network's behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.realconfig import RealConfig
from repro.net.topologies import ring
from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions, read_stream
from repro.serve.stream import write_stream
from repro.workloads import ospf_snapshot, stream_batches


@pytest.fixture(scope="module")
def labeled_ring():
    return ring(6)


@pytest.fixture(scope="module")
def ring_snapshot(labeled_ring):
    return ospf_snapshot(labeled_ring)


@pytest.fixture
def make_daemon(labeled_ring, ring_snapshot, tmp_path):
    """Factory: build a daemon over a freshly written flap stream.

    Returns ``(daemon, batches)``; keyword args override ServeOptions
    fields, plus ``count``/``seed`` for the stream and ``clock``/``sleep``/
    ``on_batch_done`` for the loop.  Backoff sleeps are no-ops by default
    so tests never stall.
    """

    def build(
        count=10,
        seed=3,
        clock=None,
        sleep=None,
        on_batch_done=None,
        resume_cursor=0,
        verifier=None,
        **option_overrides,
    ):
        batches = stream_batches(labeled_ring, count=count, seed=seed)
        stream_path = tmp_path / "stream.jsonl"
        write_stream(batches, stream_path)
        option_overrides.setdefault("breaker_threshold", 0)
        option_overrides.setdefault("backoff_base", 0.0)
        options = ServeOptions(**option_overrides)
        daemon = ServeDaemon(
            verifier or RealConfig(ring_snapshot),
            read_stream(stream_path),
            DeadLetterBox(tmp_path / "deadletter"),
            options,
            clock=clock or (lambda: 0.0),
            sleep=sleep or (lambda seconds: None),
            resume_cursor=resume_cursor,
            on_batch_done=on_batch_done,
        )
        return daemon, batches

    return build


def apply_direct(snapshot, batches, skip_ids=()):
    """Ground truth: the batches applied straight through a fresh
    verifier, skipping the given batch ids (``{index:06d}`` naming)."""
    verifier = RealConfig(snapshot)
    for index, batch in enumerate(batches):
        if f"{index:06d}" in set(skip_ids):
            continue
        verifier.apply_changes(batch)
    return verifier
