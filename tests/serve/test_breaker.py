"""The incremental/full-rebuild circuit breaker state machine."""

import threading

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    STATE_GAUGE,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, cooldown_seconds=10.0, clock=clock
    )


class TestTransitions:
    def test_starts_closed(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allows_incremental()

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allows_incremental()

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak restarted, never hit 3

    def test_cooldown_gates_the_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 9.9
        assert not breaker.allows_incremental()
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.allows_incremental()  # the probe
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allows_incremental()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_and_restarts_cooldown(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allows_incremental()
        breaker.record_failure()  # the probe fails
        assert breaker.state == OPEN
        assert breaker.opens == 2
        clock.now = 19.9  # new cooldown counts from the re-open
        assert not breaker.allows_incremental()
        clock.now = 20.0
        assert breaker.allows_incremental()

    def test_half_open_allows_the_probe_batch(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allows_incremental()
        # Asking again while the probe is in flight stays permissive.
        assert breaker.allows_incremental()
        assert breaker.state == HALF_OPEN


class TestSurface:
    def test_gauge_values(self, breaker, clock):
        assert breaker.gauge_value() == STATE_GAUGE[CLOSED] == 0
        for _ in range(3):
            breaker.record_failure()
        assert breaker.gauge_value() == STATE_GAUGE[OPEN] == 2
        clock.now = 10.0
        breaker.allows_incremental()
        assert breaker.gauge_value() == STATE_GAUGE[HALF_OPEN] == 1

    def test_describe_mentions_state(self, breaker, clock):
        assert "closed" in breaker.describe()
        for _ in range(3):
            breaker.record_failure()
        assert "open" in breaker.describe()
        clock.now = 10.0
        breaker.allows_incremental()
        assert "probing" in breaker.describe()

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1, clock=clock)


def run_racing(*targets):
    barrier = threading.Barrier(len(targets))
    errors = []

    def wrap(target):
        barrier.wait()
        try:
            target()
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [
        threading.Thread(target=wrap, args=(target,)) for target in targets
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors


class TestConcurrency:
    """The multi-tenant service reports probe outcomes and quarantine
    failures against the same breaker from racing call sites; the lock
    must make every interleaving land on a legal state."""

    def test_probe_failure_racing_quarantine_opens_exactly_once(self, clock):
        # Half-open, then two failures arrive together (the probe's and
        # a concurrent quarantine's): one re-open, never two.
        for _ in range(100):
            clock.now = 0.0
            breaker = CircuitBreaker(
                failure_threshold=3, cooldown_seconds=10.0, clock=clock
            )
            for _ in range(3):
                breaker.record_failure()
            clock.now = 10.0
            assert breaker.allows_incremental()
            assert breaker.state == HALF_OPEN
            run_racing(breaker.record_failure, breaker.record_failure)
            snap = breaker.snapshot()
            assert snap["state"] == OPEN
            assert snap["opens"] == 2  # the trip, plus exactly one re-open

    def test_probe_grant_racing_failure_is_atomic(self, clock):
        # allows_incremental() (open -> half-open probe grant) racing
        # record_failure(): only the two serialized orders may result.
        #   grant first:   half-open, failure re-opens  -> (open, 2)
        #   failure first: open absorbs it, then probes -> (half-open, 1)
        # A torn transition would show (half-open, 2) or (open, 1).
        for _ in range(100):
            clock.now = 0.0
            breaker = CircuitBreaker(
                failure_threshold=3, cooldown_seconds=10.0, clock=clock
            )
            for _ in range(3):
                breaker.record_failure()
            clock.now = 10.0
            run_racing(breaker.allows_incremental, breaker.record_failure)
            snap = breaker.snapshot()
            assert (snap["state"], snap["opens"]) in {
                (OPEN, 2),
                (HALF_OPEN, 1),
            }

    def test_hammering_all_transitions_never_tears_a_snapshot(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=0.0, clock=clock
        )
        snapshots = []

        def churn():
            for _ in range(300):
                breaker.allows_incremental()
                breaker.record_failure()
                breaker.record_success()

        def observe():
            for _ in range(300):
                snapshots.append(breaker.snapshot())

        run_racing(churn, churn, churn, observe)
        for snap in snapshots + [breaker.snapshot()]:
            assert snap["state"] in (CLOSED, HALF_OPEN, OPEN)
            assert snap["consecutive_failures"] >= 0
            assert snap["opens"] >= 0
        opens_seen = [s["opens"] for s in snapshots]
        assert opens_seen == sorted(opens_seen)  # monotone, never rolled back
