"""The CLI surface of the serving layer: ``repro emit-stream``,
``repro serve``, ``repro watch``, and the serve resume contract."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def snap_dir(tmp_path):
    path = tmp_path / "snap"
    assert main(["generate", "--topology", "ring:4", "--protocol", "ospf",
                 "--out", str(path)]) == 0
    return path


@pytest.fixture
def stream_file(snap_dir, tmp_path, capsys):
    path = tmp_path / "stream.jsonl"
    assert main(["emit-stream", str(snap_dir), "--out", str(path),
                 "--count", "6", "--seed", "1"]) == 0
    capsys.readouterr()
    return path


class TestEmitStream:
    def test_writes_requested_batches(self, snap_dir, tmp_path, capsys):
        out = tmp_path / "s.jsonl"
        assert main(["emit-stream", str(snap_dir), "--out", str(out),
                     "--count", "5"]) == 0
        assert "wrote 5 change batch(es)" in capsys.readouterr().out
        lines = [l for l in out.read_text().splitlines() if l.strip()]
        assert len(lines) == 5
        assert all("changes" in json.loads(l) for l in lines)

    def test_missing_snapshot_exits_two(self, tmp_path, capsys):
        assert main(["emit-stream", str(tmp_path / "ghost"),
                     "--out", str(tmp_path / "s.jsonl")]) == 2


class TestServe:
    def test_clean_stream_exits_zero(
        self, snap_dir, stream_file, tmp_path, capsys
    ):
        health = tmp_path / "health.json"
        ckpt = tmp_path / "serve.ckpt"
        code = main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--dead-letter", str(tmp_path / "dl"),
                     "--backoff-base", "0",
                     "--health-file", str(health),
                     "--checkpoint", str(ckpt)])
        captured = capsys.readouterr()
        assert code == 0
        assert "6/6 batches ok" in captured.out
        assert f"final checkpoint: {ckpt} (cursor 6)" in captured.out
        assert json.loads(health.read_text())["status"] == "stopped"
        assert ckpt.exists()

    def test_poison_batch_exits_one_with_runbook_hint(
        self, snap_dir, stream_file, tmp_path, capsys
    ):
        lines = stream_file.read_text().splitlines()
        lines.insert(3, '{"id": "poison", "changes": [{"kind": "Nope"}]}')
        stream_file.write_text("\n".join(lines) + "\n")
        dead_letter = tmp_path / "dl"
        code = main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--dead-letter", str(dead_letter),
                     "--backoff-base", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "1 quarantined" in captured.out
        assert "poison batch(es)" in captured.err
        assert "replay" in captured.err
        meta = json.loads(
            (dead_letter / "poison" / "meta.json").read_text()
        )
        assert meta["failure_class"] == "permanent"

    def test_missing_stream_exits_two(self, snap_dir, tmp_path, capsys):
        assert main(["serve", str(snap_dir),
                     "--stream", str(tmp_path / "ghost.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_from_serve_checkpoint_skips_done_batches(
        self, snap_dir, stream_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "serve.ckpt"
        assert main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--backoff-base", "0",
                     "--dead-letter", str(tmp_path / "dl"),
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        code = main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--backoff-base", "0",
                     "--dead-letter", str(tmp_path / "dl"),
                     "--checkpoint", str(ckpt),
                     "--resume-from", str(ckpt)])
        captured = capsys.readouterr()
        assert code == 0
        assert "resumed verifier from" in captured.out
        assert "at stream cursor 6" in captured.out
        assert "0/0 batches ok" in captured.out  # nothing left to do
        assert "resumed past 6" in captured.out


class TestWatch:
    def test_watch_drains_a_directory_then_idles_out(
        self, snap_dir, tmp_path, capsys
    ):
        from repro.serve import read_stream, write_batch_file

        stream = tmp_path / "stream.jsonl"
        assert main(["emit-stream", str(snap_dir), "--out", str(stream),
                     "--count", "3"]) == 0
        watch_dir = tmp_path / "incoming"
        for batch in read_stream(stream):
            write_batch_file(batch.batch_id, batch.changes, watch_dir)
        code = main(["watch", str(snap_dir), "--stream", str(watch_dir),
                     "--dead-letter", str(tmp_path / "dl"),
                     "--backoff-base", "0",
                     "--poll-interval", "0.01",
                     "--idle-timeout", "0.05"])
        captured = capsys.readouterr()
        assert code == 0
        assert "3/3 batches ok" in captured.out


class TestObsVerbs:
    def test_serve_with_journal_and_obs_port_prints_url(
        self, snap_dir, stream_file, tmp_path, capsys
    ):
        journal = tmp_path / "journal.jsonl"
        code = main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--dead-letter", str(tmp_path / "dl"),
                     "--backoff-base", "0",
                     "--journal", str(journal),
                     "--obs-port", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "introspection server on http://127.0.0.1:" in captured.out
        assert journal.exists()

    def test_tail_replays_journal_offline(
        self, snap_dir, stream_file, tmp_path, capsys
    ):
        journal = tmp_path / "journal.jsonl"
        assert main(["serve", str(snap_dir), "--stream", str(stream_file),
                     "--dead-letter", str(tmp_path / "dl"),
                     "--backoff-base", "0",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["tail", "--journal", str(journal)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "daemon-start" in lines[0]
        assert "daemon-stop" in lines[-1]
        # --since resumes mid-stream on the same seqs.
        assert main(["tail", "--journal", str(journal), "--since",
                     str(len(lines) - 1)]) == 0
        resumed = capsys.readouterr().out.splitlines()
        assert len(resumed) == 1
        assert "daemon-stop" in resumed[0]

    def test_tail_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["tail"]) == 2
        assert "SERVER address or --journal" in capsys.readouterr().err
        assert main(["tail", "--journal", str(tmp_path / "j"), ":1234"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_top_renders_live_server(self, capsys):
        from repro.obs import IntrospectionServer, ObsState

        state = ObsState(
            health=lambda: {"status": "serving", "mode": "incremental",
                            "cursor": 3, "queue_depth": 1,
                            "batches_ok": 3, "batches_seen": 3,
                            "retries": 0, "quarantined": 0,
                            "new_violations": 0},
            stats=lambda: {"journal_seq": 9, "flight_dumps": 0,
                           "histograms": {"batch": {
                               "count": 3, "mean_seconds": 0.01,
                               "p50_seconds": 0.01, "p95_seconds": 0.02,
                               "p99_seconds": 0.02, "max_seconds": 0.02}}},
            events_since=lambda since: [],
        )
        server = IntrospectionServer(state).start()
        try:
            assert main(["top", f"127.0.0.1:{server.port}"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "status=serving" in out
        assert "batches 3/3 ok" in out
        assert "journal seq 9" in out

    def test_top_unreachable_server_exits_two(self, capsys):
        assert main(["top", "127.0.0.1:9"]) == 2
        assert "cannot read introspection server" in capsys.readouterr().err
