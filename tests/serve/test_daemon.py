"""The serving loop end-to-end: poison isolation, breaker degradation,
deadlines, backpressure, health, checkpoint/resume, graceful shutdown.

Everything here follows the same shape: drive a daemon over a
deterministic flap stream on the OSPF ring, then compare its final state
fingerprint against :func:`tests.serve.conftest.apply_direct` — the same
batches applied straight through a fresh verifier.
"""

import json
import os
import signal
import time

from repro.core.realconfig import RealConfig
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve import (
    CLOSED,
    OPEN,
    DeadLetterBox,
    ServeDaemon,
    ServeOptions,
    fib_fingerprint,
    read_stream,
    resume_cursor_from,
    write_stream,
)
from repro.serve.stream import ChangeBatch
from repro.resilience.checkpoint import read_checkpoint

from tests.serve.conftest import apply_direct


class TestHappyPath:
    def test_all_batches_commit_and_state_matches_direct_application(
        self, make_daemon, ring_snapshot
    ):
        daemon, batches = make_daemon(count=10, queue_capacity=4)
        stats = daemon.run()
        assert stats.batches_seen == 10
        assert stats.batches_ok == 10
        assert stats.quarantined == 0
        assert stats.retries == 0
        assert stats.clean
        assert not stats.stopped_early
        assert stats.max_queue_depth <= 4
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )

    def test_transient_fault_is_retried_to_success(
        self, make_daemon, ring_snapshot
    ):
        daemon, batches = make_daemon(count=5, max_retries=2)
        # Batch 2's first attempt is generation call 3; it faults once.
        plan = FaultPlan(FaultSpec("generation", call=3))
        with inject(plan):
            stats = daemon.run()
        assert plan.fired
        assert stats.batches_ok == 5
        assert stats.retries == 1
        assert stats.quarantined == 0
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )


class TestPoisonIsolation:
    def test_one_poison_batch_in_fifty_is_quarantined_alone(
        self, make_daemon, ring_snapshot
    ):
        """The headline acceptance test: a 50-batch stream with one batch
        that fails permanently.  The other 49 must commit, the dead-letter
        directory must contain exactly the poison batch (with its error
        and pre-batch fingerprint), and the final state must match a
        from-scratch application of the 49 survivors."""
        daemon, batches = make_daemon(count=50, max_retries=2)
        poison = 7  # 0-based stream index
        # Its first attempt is generation call poison+1; repeat covers the
        # whole retry budget (3 attempts), so the batch is truly poison.
        plan = FaultPlan(
            FaultSpec("generation", call=poison + 1, repeat=3)
        )
        pre_poison = fib_fingerprint(
            apply_direct(ring_snapshot, batches[:poison])
        )
        with inject(plan):
            stats = daemon.run()
        assert len(plan.fired) == 3  # every attempt faulted
        assert stats.batches_seen == 50
        assert stats.batches_ok == 49
        assert stats.retries == 2
        assert stats.quarantined == 1
        assert stats.quarantined_ids == ["000007"]
        assert not stats.clean

        box = daemon.dead_letter
        assert box.batch_ids() == ["000007"]
        meta = box.meta("000007")
        assert meta["attempts"] == 3
        assert meta["failure_class"] == "transient"
        assert meta["error_type"] == "FaultInjected"
        assert "generation" in meta["error"]
        # The fingerprint describes the rolled-back (pre-batch) state.
        assert meta["pre_batch_fingerprint"] == pre_poison
        error_text = (
            box.directory / "000007" / "error.txt"
        ).read_text()
        assert "FaultInjected" in error_text

        # The survivors' state is exactly a direct application of the 49.
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches, skip_ids={"000007"})
        )

    def test_quarantined_batch_replays_cleanly_once_the_fault_clears(
        self, make_daemon, ring_snapshot
    ):
        """The dead-letter runbook: after the root cause is fixed, the
        quarantined payload replays through the verifier and converges to
        the full-stream state."""
        daemon, batches = make_daemon(count=10, max_retries=0)
        plan = FaultPlan(FaultSpec("generation", call=4, repeat=1))
        with inject(plan):
            daemon.run()
        assert daemon.dead_letter.batch_ids() == ["000003"]
        for replayed in daemon.dead_letter.replay():  # no plan active now
            daemon.verifier.apply_changes(replayed.changes)
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )

    def test_malformed_stream_line_is_quarantined_not_fatal(
        self, labeled_ring, ring_snapshot, tmp_path
    ):
        from repro.workloads import stream_batches

        batches = stream_batches(labeled_ring, count=4, seed=3)
        path = tmp_path / "stream.jsonl"
        write_stream(batches, path)
        lines = path.read_text().splitlines()
        lines.insert(2, '{"id": "poison", "changes": [{"kind": "Nope"}]}')
        path.write_text("\n".join(lines) + "\n")
        daemon = ServeDaemon(
            RealConfig(ring_snapshot),
            read_stream(path),
            DeadLetterBox(tmp_path / "dl"),
            ServeOptions(breaker_threshold=0, backoff_base=0.0),
            sleep=lambda s: None,
        )
        stats = daemon.run()
        assert stats.batches_seen == 5
        assert stats.batches_ok == 4
        assert stats.quarantined == 1
        meta = daemon.dead_letter.meta("poison")
        assert meta["failure_class"] == "permanent"
        assert meta["error_type"] == "StreamError"
        assert meta["attempts"] == 0
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )


class TestCircuitBreaker:
    def test_opens_after_threshold_then_probe_closes_it(
        self, make_daemon, ring_snapshot
    ):
        daemon, batches = make_daemon(
            count=6,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=0.0,
        )
        # The first two incremental attempts fault; everything after is
        # healthy, so the cooldown probe succeeds and the breaker closes.
        plan = FaultPlan(FaultSpec("generation", call=1, repeat=2))
        with inject(plan):
            stats = daemon.run()
        # Batch 0 fails below threshold -> quarantined.  Batch 1 trips
        # the breaker -> served via rebuild fallback.  Batch 2 is the
        # probe, succeeds, closes.  Batches 3-5 run incrementally.
        assert stats.quarantined_ids == ["000000"]
        assert stats.breaker_opens == 1
        assert stats.rebuild_batches == 1
        assert stats.batches_ok == 5
        assert daemon.breaker.state == CLOSED
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches, skip_ids={"000000"})
        )

    def test_rebuild_mode_serves_correctly_while_cooldown_runs(
        self, make_daemon, ring_snapshot
    ):
        now = {"value": 0.0}
        daemon, batches = make_daemon(
            count=6,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=1000.0,
            clock=lambda: now["value"],
        )
        plan = FaultPlan(FaultSpec("generation", call=1, repeat=2))
        with inject(plan):
            stats = daemon.run()
        # The clock never advances, so after the breaker opens every
        # remaining batch is served in full-rebuild mode — and the final
        # state must still be correct.
        assert daemon.breaker.state == OPEN
        assert stats.rebuild_batches == 5
        assert stats.batches_ok == 5
        assert stats.quarantined_ids == ["000000"]
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches, skip_ids={"000000"})
        )

    def test_failed_probe_reopens_and_falls_back_to_rebuild(
        self, make_daemon, ring_snapshot
    ):
        daemon, batches = make_daemon(
            count=6,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=0.0,
        )
        # Every incremental attempt faults, forever: each probe fails and
        # the rebuild fallback carries the whole stream.
        plan = FaultPlan(FaultSpec("generation", call=1, repeat=0))
        with inject(plan):
            stats = daemon.run()
        assert daemon.breaker.state == OPEN
        assert stats.breaker_opens >= 2  # initial open plus re-opens
        assert stats.quarantined_ids == ["000000"]
        assert stats.batches_ok == 5
        assert stats.rebuild_batches == 5
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches, skip_ids={"000000"})
        )


class TestDeadline:
    def test_slow_attempt_is_aborted_and_retried(
        self, make_daemon, ring_snapshot
    ):
        daemon, batches = make_daemon(
            count=4,
            max_retries=2,
            deadline_seconds=0.05,
            clock=time.monotonic,
        )
        # One slow attempt: the injected delay burns the 50ms budget, the
        # cooperative abort fires at the next stage boundary, the
        # transaction rolls back, and the retry (fault-free) commits.
        plan = FaultPlan(
            FaultSpec(
                "generation", call=1, action="delay", delay_seconds=0.2
            )
        )
        with inject(plan):
            stats = daemon.run()
        assert stats.deadline_exceeded == 1
        assert stats.retries == 1
        assert stats.batches_ok == 4
        assert stats.quarantined == 0
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )


class TestBackpressure:
    def test_source_is_pulled_lazily_within_queue_capacity(
        self, labeled_ring, ring_snapshot, tmp_path
    ):
        from repro.workloads import stream_batches

        batches = stream_batches(labeled_ring, count=12, seed=3)
        path = tmp_path / "stream.jsonl"
        write_stream(batches, path)
        pulled = {"count": 0}

        def counting_source():
            for batch in read_stream(path):
                pulled["count"] += 1
                yield batch

        capacity = 3

        def check(daemon, batch, ok):
            assert (
                pulled["count"] <= daemon.stats.batches_seen + capacity
            )

        daemon = ServeDaemon(
            RealConfig(ring_snapshot),
            counting_source(),
            DeadLetterBox(tmp_path / "dl"),
            ServeOptions(
                breaker_threshold=0,
                backoff_base=0.0,
                queue_capacity=capacity,
            ),
            sleep=lambda s: None,
            on_batch_done=check,
        )
        stats = daemon.run()
        assert stats.batches_ok == 12
        assert stats.max_queue_depth <= capacity

    def test_idle_source_sleeps_poll_interval(
        self, ring_snapshot, tmp_path
    ):
        from repro.config.changes import SetOspfCost, ShutdownInterface

        work = [
            ChangeBatch("000000", [ShutdownInterface("r0", "eth0")]),
            ChangeBatch("000001", [SetOspfCost("r1", "eth1", 5)]),
        ]

        def flaky_source():
            yield None  # "nothing available yet"
            yield None
            yield from work

        sleeps = []
        daemon = ServeDaemon(
            RealConfig(ring_snapshot),
            flaky_source(),
            DeadLetterBox(tmp_path / "dl"),
            ServeOptions(
                breaker_threshold=0, backoff_base=0.0, poll_interval=0.25
            ),
            sleep=sleeps.append,
        )
        stats = daemon.run()
        assert stats.batches_ok == 2
        assert sleeps == [0.25, 0.25]


class TestWatchdogAndHealth:
    def test_watchdog_audits_on_cadence(self, make_daemon):
        daemon, _ = make_daemon(count=6, audit_every=3)
        stats = daemon.run()
        assert stats.audits == 2
        assert stats.audit_rebuilds == 0  # incremental state never drifted

    def test_health_file_heartbeats_then_reports_stopped(
        self, make_daemon, tmp_path
    ):
        health = tmp_path / "health.json"
        seen = []

        def peek(daemon, batch, ok):
            payload = json.loads(health.read_text())
            seen.append((payload["status"], payload["last_batch"]))

        daemon, _ = make_daemon(
            count=3, health_file=health, on_batch_done=peek
        )
        daemon.run()
        assert seen == [
            ("serving", "000000"),
            ("serving", "000001"),
            ("serving", "000002"),
        ]
        final = json.loads(health.read_text())
        assert final["status"] == "stopped"
        assert final["cursor"] == 3
        assert final["batches_ok"] == 3
        assert final["quarantined"] == 0
        assert final["mode"] == "incremental"
        assert final["pid"] == os.getpid()


class TestShutdownAndResume:
    def test_graceful_stop_checkpoints_and_resume_finishes_the_stream(
        self, make_daemon, ring_snapshot, tmp_path
    ):
        ckpt = tmp_path / "serve.ckpt"

        def stop_at_four(daemon, batch, ok):
            if daemon.cursor == 4:
                daemon.request_stop()

        first, batches = make_daemon(
            count=10, checkpoint_file=ckpt, on_batch_done=stop_at_four
        )
        stats = first.run()
        assert stats.stopped_early
        assert stats.batches_seen == 4
        assert resume_cursor_from(ckpt) == 4

        second, _ = make_daemon(
            count=10,
            verifier=read_checkpoint(ckpt),
            resume_cursor=resume_cursor_from(ckpt),
            checkpoint_file=ckpt,
        )
        stats2 = second.run()
        # No batch lost, none applied twice.
        assert stats2.skipped_on_resume == 4
        assert stats2.batches_seen == 6
        assert resume_cursor_from(ckpt) == 10
        assert fib_fingerprint(second.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )

    def test_periodic_checkpoints_carry_the_cursor(
        self, make_daemon, tmp_path
    ):
        ckpt = tmp_path / "serve.ckpt"
        observed = {}

        def peek(daemon, batch, ok):
            if daemon.cursor == 3:
                observed["mid"] = resume_cursor_from(ckpt)

        daemon, _ = make_daemon(
            count=6,
            checkpoint_file=ckpt,
            checkpoint_every=2,
            on_batch_done=peek,
        )
        daemon.run()
        assert observed["mid"] == 2  # last cadence checkpoint before 3
        assert resume_cursor_from(ckpt) == 6  # final shutdown checkpoint

    def test_sigint_stops_gracefully_and_restores_handlers(
        self, make_daemon, tmp_path
    ):
        ckpt = tmp_path / "serve.ckpt"
        previous = signal.getsignal(signal.SIGINT)

        def interrupt(daemon, batch, ok):
            if daemon.cursor == 2:
                os.kill(os.getpid(), signal.SIGINT)

        daemon, _ = make_daemon(
            count=10, checkpoint_file=ckpt, on_batch_done=interrupt
        )
        stats = daemon.run(handle_signals=True)
        assert stats.stopped_early
        assert stats.batches_seen == 2  # in-flight batch finished, then out
        assert resume_cursor_from(ckpt) == 2
        assert signal.getsignal(signal.SIGINT) is previous
