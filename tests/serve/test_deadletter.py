"""The dead-letter directory: quarantine records and replay."""

import json

import pytest

from repro.config.changes import SetOspfCost, ShutdownInterface
from repro.serve.deadletter import DeadLetterBox
from repro.serve.stream import ChangeBatch, encode_batch


@pytest.fixture
def box(tmp_path):
    return DeadLetterBox(tmp_path / "deadletter")


def make_batch(batch_id="000007", changes=None):
    changes = changes or [ShutdownInterface("r0", "eth0")]
    return ChangeBatch(
        batch_id=batch_id,
        changes=changes,
        payload=encode_batch(batch_id, changes),
    )


class TestQuarantine:
    def test_writes_payload_error_and_meta(self, box):
        batch = make_batch()
        try:
            raise RuntimeError("engine exploded")
        except RuntimeError as error:
            entry = box.quarantine(
                batch,
                error,
                attempts=3,
                failure_class="transient",
                fingerprint="abc123",
            )
        assert entry == box.directory / "000007"
        payload = json.loads((entry / "batch.json").read_text())
        assert payload == batch.payload
        error_text = (entry / "error.txt").read_text()
        assert "RuntimeError" in error_text
        assert "engine exploded" in error_text
        assert "Traceback" in error_text  # full traceback for the operator
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["batch_id"] == "000007"
        assert meta["attempts"] == 3
        assert meta["failure_class"] == "transient"
        assert meta["error_type"] == "RuntimeError"
        assert meta["pre_batch_fingerprint"] == "abc123"
        assert meta["quarantined_unix"] > 0

    def test_batch_without_payload_gets_reencoded(self, box):
        batch = ChangeBatch(
            batch_id="raw", changes=[SetOspfCost("r1", "eth0", 9)]
        )
        box.quarantine(
            batch, ValueError("x"), attempts=1, failure_class="permanent"
        )
        replayed = box.load("raw")
        assert replayed.ok
        assert replayed.changes == batch.changes

    def test_empty_box(self, box):
        assert len(box) == 0
        assert box.batch_ids() == []
        assert list(box.replay()) == []

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        assert len(DeadLetterBox(tmp_path / "never-created")) == 0


class TestReplay:
    def test_replay_yields_decodable_batches_in_order(self, box):
        first = make_batch("000002", [ShutdownInterface("r0", "eth0")])
        second = make_batch("000005", [SetOspfCost("r1", "eth1", 3)])
        for batch in (second, first):  # quarantine out of order
            box.quarantine(
                batch, ValueError("x"), attempts=1, failure_class="transient"
            )
        assert box.batch_ids() == ["000002", "000005"]
        replayed = list(box.replay())
        assert [b.batch_id for b in replayed] == ["000002", "000005"]
        assert [b.changes for b in replayed] == [
            first.changes,
            second.changes,
        ]
        assert all(b.ok for b in replayed)

    def test_malformed_payload_replays_as_poison(self, box):
        batch = ChangeBatch(
            batch_id="bad",
            payload={"id": "bad", "changes": [{"kind": "Nope"}]},
            decode_error="unknown change kind 'Nope'",
        )
        box.quarantine(
            batch,
            ValueError("malformed"),
            attempts=0,
            failure_class="permanent",
        )
        (replayed,) = list(box.replay())
        assert not replayed.ok
        assert "unknown change kind" in replayed.decode_error

    def test_meta_round_trip(self, box):
        box.quarantine(
            make_batch(),
            ValueError("x"),
            attempts=2,
            failure_class="transient",
            fingerprint="f" * 64,
        )
        assert box.meta("000007")["pre_batch_fingerprint"] == "f" * 64
