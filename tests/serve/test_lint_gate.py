"""The serve-loop lint gate: batches that introduce new lint errors are
quarantined under their own dead-letter class in enforce mode and counted
(but accepted) in warn mode."""

from __future__ import annotations

import pytest

from repro.config.changes import AddStaticRouteIp, SetOspfCost
from repro.core.realconfig import RealConfig
from repro.net.addr import Prefix, parse_ipv4
from repro.net.topologies import ring
from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions, read_stream
from repro.serve.stream import write_stream
from repro.telemetry import MetricsRegistry, names, set_metrics
from repro.workloads import ospf_snapshot


#: An IP outside every subnet of the ring: STA001 (error) on arrival.
BLACKHOLE = AddStaticRouteIp(
    "r0", Prefix.parse("198.51.100.0/24"), parse_ipv4("192.0.2.77")
)


def _interface_name(snapshot):
    return sorted(snapshot.devices["r0"].interfaces)[0]


@pytest.fixture
def make_gated_daemon(tmp_path):
    def build(lint_mode, batches, **option_overrides):
        snapshot = ospf_snapshot(ring(4))
        stream_path = tmp_path / "stream.jsonl"
        write_stream(batches, stream_path)
        option_overrides.setdefault("breaker_threshold", 0)
        option_overrides.setdefault("backoff_base", 0.0)
        daemon = ServeDaemon(
            RealConfig(snapshot, lint_mode=lint_mode),
            read_stream(stream_path),
            DeadLetterBox(tmp_path / "deadletter"),
            ServeOptions(**option_overrides),
            clock=lambda: 0.0,
            sleep=lambda seconds: None,
        )
        return daemon

    return build


def _cost_change(snapshot):
    return SetOspfCost("r0", _interface_name(snapshot), 7)


class TestEnforceMode:
    def test_offending_batch_is_quarantined_as_lint_rejected(
        self, make_gated_daemon
    ):
        snapshot = ospf_snapshot(ring(4))
        daemon = make_gated_daemon(
            "enforce", [[_cost_change(snapshot)], [BLACKHOLE]]
        )
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            stats = daemon.run()
        finally:
            set_metrics(previous)
        assert stats.batches_ok == 1
        assert stats.quarantined == 1
        assert stats.lint_rejected == 1
        assert stats.retries == 0  # permanent: no retry budget wasted
        (batch_id,) = stats.quarantined_ids
        meta = daemon.dead_letter.meta(batch_id)
        assert meta["failure_class"] == "lint-rejected"
        assert "lint gate" in meta["error"]
        assert registry.value(names.SERVE_LINT_REJECTED) == 1
        assert "lint-rejected" in stats.summary()

    def test_verifier_state_untouched_by_rejected_batch(
        self, make_gated_daemon
    ):
        daemon = make_gated_daemon("enforce", [[BLACKHOLE]])
        daemon.run()
        assert not daemon.verifier.snapshot.devices["r0"].static_routes
        assert daemon.verifier.lint_result is not None
        assert daemon.verifier.lint_result.errors() == []


class TestWarnMode:
    def test_new_lint_errors_are_counted_not_blocked(
        self, make_gated_daemon
    ):
        snapshot = ospf_snapshot(ring(4))
        daemon = make_gated_daemon(
            "warn", [[BLACKHOLE], [_cost_change(snapshot)]]
        )
        stats = daemon.run()
        assert stats.batches_ok == 2
        assert stats.quarantined == 0
        assert stats.lint_rejected == 0
        assert stats.lint_new_errors == 1
        assert "new lint errors" in stats.summary()
        # The offending route actually landed.
        assert daemon.verifier.snapshot.devices["r0"].static_routes

    def test_clean_stream_counts_nothing(self, make_gated_daemon):
        snapshot = ospf_snapshot(ring(4))
        daemon = make_gated_daemon("warn", [[_cost_change(snapshot)]])
        stats = daemon.run()
        assert stats.lint_new_errors == 0
        assert stats.lint_rejected == 0


class TestHealthPayload:
    def test_health_file_reports_lint_counts(
        self, make_gated_daemon, tmp_path
    ):
        import json

        health = tmp_path / "health.json"
        daemon = make_gated_daemon(
            "enforce", [[BLACKHOLE]], health_file=health
        )
        daemon.run()
        payload = json.loads(health.read_text())
        assert payload["lint_rejected"] == 1
        assert payload["lint_new_errors"] == 0
