"""The daemon's observability wiring, end to end: journal events for
every batch outcome, flight-recorder dumps next to dead-letter entries,
gapless /events replay across restarts, and the live HTTP endpoints."""

import json
from urllib.request import urlopen

from repro.obs import (
    EVENT_COMMITTED,
    EVENT_QUARANTINED,
    EVENT_RETRIED,
    EVENT_STAGE,
    EVENT_START,
    EVENT_STOP,
    read_events,
)
from repro.resilience.faults import FaultPlan, FaultSpec, inject


def journal_events(path):
    return list(read_events(path))


class TestJournal:
    def test_batch_lifecycle_is_journaled(self, make_daemon, tmp_path):
        journal = tmp_path / "journal.jsonl"
        daemon, batches = make_daemon(count=3, journal_file=journal)
        daemon.run()
        events = journal_events(journal)
        kinds = [event["event"] for event in events]
        assert kinds[0] == EVENT_START
        assert kinds[-1] == EVENT_STOP
        assert kinds.count(EVENT_COMMITTED) == 3
        # Five stage events per committed batch, cid = batch/stage.
        stages = [e for e in events if e["event"] == EVENT_STAGE]
        assert len(stages) == 3 * 5
        assert {e["stage"] for e in stages} == {
            "diff", "lint", "generation", "model", "policy",
        }
        first = next(e for e in stages if e["batch"] == "000000")
        assert first["cid"] == f"000000/{first['stage']}"
        # Seqs are strictly consecutive.
        assert [e["seq"] for e in events] == list(
            range(1, len(events) + 1)
        )

    def test_retries_and_quarantine_are_journaled(
        self, make_daemon, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        daemon, _ = make_daemon(
            count=5, max_retries=1, journal_file=journal
        )
        plan = FaultPlan(FaultSpec("generation", call=3, repeat=2))
        with inject(plan):
            daemon.run()
        events = journal_events(journal)
        retried = [e for e in events if e["event"] == EVENT_RETRIED]
        assert len(retried) == 1
        assert retried[0]["batch"] == "000002"
        assert retried[0]["error_type"] == "FaultInjected"
        quarantined = [e for e in events if e["event"] == EVENT_QUARANTINED]
        assert len(quarantined) == 1
        assert quarantined[0]["batch"] == "000002"
        assert quarantined[0]["attempts"] == 2

    def test_seqs_stay_gapless_across_daemon_restart(
        self, make_daemon, tmp_path
    ):
        """The acceptance criterion: /events?since=SEQ replays without
        gaps even across a daemon restart on the same journal file."""
        journal = tmp_path / "journal.jsonl"
        daemon, _ = make_daemon(count=2, journal_file=journal)
        daemon.run()
        first_run_last = journal_events(journal)[-1]["seq"]
        daemon2, _ = make_daemon(count=2, journal_file=journal)
        daemon2.run()
        seqs = [e["seq"] for e in journal_events(journal)]
        assert seqs == list(range(1, len(seqs) + 1))
        resumed = [
            e["seq"]
            for e in read_events(journal, since=first_run_last)
        ]
        assert resumed[0] == first_run_last + 1


class TestFlightDumps:
    def test_quarantine_entry_includes_flight_dump(
        self, make_daemon, tmp_path
    ):
        daemon, _ = make_daemon(count=5, max_retries=0)
        plan = FaultPlan(FaultSpec("generation", call=3, repeat=1))
        with inject(plan):
            daemon.run()
        assert daemon.dead_letter.batch_ids() == ["000002"]
        flight = daemon.dead_letter.flight("000002")
        assert flight is not None
        # The ring already holds the quarantine event itself plus the
        # preceding committed batches.
        kinds = [event["event"] for event in flight["events"]]
        assert EVENT_QUARANTINED in kinds
        assert EVENT_COMMITTED in kinds
        # Latency histograms cover the committed stages.
        assert flight["histograms"]["batch"]["count"] >= 2
        assert "model" in flight["histograms"]
        assert daemon.recorder.dumps_written == 1

    def test_breaker_open_dumps_flight_to_dead_letter_dir(
        self, make_daemon
    ):
        daemon, _ = make_daemon(
            count=4, max_retries=0, breaker_threshold=2,
            breaker_cooldown=1e9,
        )
        plan = FaultPlan(FaultSpec("generation", call=1, repeat=2))
        with inject(plan):
            daemon.run()
        dumps = sorted(
            p.name
            for p in daemon.dead_letter.directory.glob(
                "flight-breaker-open-*.json"
            )
        )
        assert dumps == ["flight-breaker-open-001.json"]

    def test_no_dumps_on_clean_run(self, make_daemon):
        daemon, _ = make_daemon(count=3)
        daemon.run()
        assert daemon.recorder.dumps_written == 0


class TestHttpEndpoints:
    def test_live_scrape_while_serving(self, make_daemon, tmp_path):
        """Scrape every endpoint mid-run (from on_batch_done, while the
        loop is between batches) and once more shapes after shutdown."""
        journal = tmp_path / "journal.jsonl"
        scraped = {}

        def scrape(daemon, batch, ok):
            if scraped:
                return
            base = daemon.obs_server.url
            for endpoint in ("/health", "/stats", "/events", "/metrics"):
                with urlopen(base + endpoint, timeout=5.0) as response:
                    scraped[endpoint] = (
                        response.status,
                        response.read().decode(),
                    )

        daemon, _ = make_daemon(
            count=3,
            journal_file=journal,
            obs_port=0,
            on_batch_done=scrape,
        )
        assert daemon.obs_server is not None
        daemon.run()
        assert set(scraped) == {"/health", "/stats", "/events", "/metrics"}
        assert all(status == 200 for status, _ in scraped.values())
        health = json.loads(scraped["/health"][1])
        assert health["status"] == "serving"
        assert health["batches_ok"] >= 1
        stats = json.loads(scraped["/stats"][1])
        assert stats["journal_seq"] >= 1
        assert "batch" in stats["histograms"]
        events = [
            json.loads(line)
            for line in scraped["/events"][1].splitlines()
        ]
        assert events[0]["event"] == EVENT_START

    def test_events_fall_back_to_ring_without_journal_file(
        self, make_daemon
    ):
        collected = {}

        def scrape(daemon, batch, ok):
            if collected:
                return
            with urlopen(
                daemon.obs_server.url + "/events", timeout=5.0
            ) as response:
                collected["events"] = [
                    json.loads(line)
                    for line in response.read().decode().splitlines()
                ]

        daemon, _ = make_daemon(count=2, obs_port=0, on_batch_done=scrape)
        daemon.run()
        assert [e["event"] for e in collected["events"]][0] == EVENT_START

    def test_server_stopped_on_finalize(self, make_daemon):
        daemon, _ = make_daemon(count=1, obs_port=0)
        url = daemon.obs_server.url
        daemon.run()
        try:
            urlopen(url + "/health", timeout=0.5)
            alive = True
        except OSError:
            alive = False
        assert not alive
