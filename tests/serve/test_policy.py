"""Deadlines, failure classification, and retry backoff."""

import pytest

from repro.config.schema import ConfigError
from repro.resilience.faults import FaultInjected
from repro.serve.policy import (
    PERMANENT,
    TRANSIENT,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    classify_failure,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_check_passes_within_budget(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock).start()
        clock.now = 0.99
        deadline.check()  # no raise
        assert deadline.remaining() == pytest.approx(0.01)

    def test_check_raises_when_spent(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock).start()
        clock.now = 1.0
        with pytest.raises(DeadlineExceeded, match="1.000s deadline"):
            deadline.check()

    def test_zero_budget_means_no_deadline(self):
        clock = FakeClock()
        deadline = Deadline(0.0, clock=clock).start()
        clock.now = 1e9
        deadline.check()  # disabled: never raises

    def test_unstarted_deadline_reports_full_budget(self):
        assert Deadline(2.5).remaining() == 2.5


class TestClassifyFailure:
    def test_injected_fault_is_transient(self):
        assert classify_failure(FaultInjected("boom")) == TRANSIENT

    def test_deadline_abort_is_transient(self):
        assert classify_failure(DeadlineExceeded("late")) == TRANSIENT

    def test_config_error_is_permanent(self):
        assert classify_failure(ConfigError("bad change")) == PERMANENT

    def test_unknown_errors_default_to_transient(self):
        assert classify_failure(RuntimeError("engine hiccup")) == TRANSIENT


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_retries=2)
        error = FaultInjected("x")
        assert policy.max_attempts == 3
        assert policy.should_retry(1, error)
        assert policy.should_retry(2, error)
        assert not policy.should_retry(3, error)

    def test_permanent_failures_never_retry(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(1, ConfigError("malformed"))

    def test_backoff_is_exponential_without_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=0.0)
        assert policy.sleep_plan(4) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_backoff_respects_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.5, jitter=0.0)
        assert policy.backoff_seconds(10) == 2.5

    def test_jitter_stays_in_band_and_is_seeded(self):
        a = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=7)
        plan_a, plan_b = a.sleep_plan(6), b.sleep_plan(6)
        assert plan_a == plan_b  # deterministic given the seed
        for attempt, sleep in enumerate(plan_a, start=1):
            raw = min(2.0, 0.1 * 2 ** (attempt - 1))
            assert raw * 0.5 <= sleep <= raw

    def test_zero_retries_quarantines_first_failure(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry(1, FaultInjected("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)
