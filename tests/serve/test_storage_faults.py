"""Storage faults during serving: a full disk (ENOSPC) or dying device
(EIO) degrades durability — counted, journaled, visible in health — but
never stops the stream from draining."""

from __future__ import annotations

import errno

from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve import fib_fingerprint
from repro.obs.journal import (
    EVENT_CHECKPOINT_FAILED,
    EVENT_JOURNAL_DEGRADED,
    read_events,
)

from tests.serve.conftest import apply_direct


class TestCheckpointWriteFailure:
    def test_enospc_on_every_checkpoint_keeps_serving(
        self, make_daemon, ring_snapshot, tmp_path
    ):
        ckpt = tmp_path / "serve.ckpt"
        daemon, batches = make_daemon(
            count=6, checkpoint_file=ckpt, checkpoint_every=2
        )
        plan = FaultPlan(
            FaultSpec("checkpoint_write", action="errno", repeat=0)
        )
        with inject(plan):
            stats = daemon.run()
        # Every batch still served, state correct — only durability lost.
        assert stats.batches_ok == 6
        assert stats.checkpoint_failures > 0
        assert not ckpt.exists()
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )

    def test_failure_is_journaled_and_in_health(
        self, make_daemon, tmp_path
    ):
        ckpt = tmp_path / "serve.ckpt"
        journal = tmp_path / "journal.jsonl"
        daemon, _ = make_daemon(
            count=4,
            checkpoint_file=ckpt,
            checkpoint_every=2,
            journal_file=journal,
        )
        plan = FaultPlan(
            FaultSpec("checkpoint_write", action="errno", err=errno.EIO)
        )
        with inject(plan):
            daemon.run()
        failed = [
            e for e in read_events(journal)
            if e["event"] == EVENT_CHECKPOINT_FAILED
        ]
        assert len(failed) == 1
        assert "Input/output error" in failed[0]["error"]
        assert daemon.health_payload()["checkpoint_failures"] == 1
        # Later cadences succeeded once the fault cleared (call=1 only).
        assert ckpt.exists()

    def test_transient_fault_costs_one_interval_not_the_lineage(
        self, make_daemon, tmp_path
    ):
        """The cadence retries: a checkpoint write that fails once is
        simply overwritten by the next interval's successful write."""
        from repro.serve import resume_cursor_from

        ckpt = tmp_path / "serve.ckpt"
        daemon, _ = make_daemon(
            count=6, checkpoint_file=ckpt, checkpoint_every=2
        )
        plan = FaultPlan(
            FaultSpec("checkpoint_write", action="errno", call=2)
        )
        with inject(plan):
            stats = daemon.run()
        assert stats.batches_ok == 6
        assert stats.checkpoint_failures == 1
        assert resume_cursor_from(ckpt) == 6


class TestJournalDegradation:
    def test_journal_fault_degrades_but_stream_drains(
        self, make_daemon, ring_snapshot, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        daemon, batches = make_daemon(count=5, journal_file=journal)
        plan = FaultPlan(
            FaultSpec("journal_write", action="errno", call=4)
        )
        with inject(plan):
            stats = daemon.run()
        assert stats.batches_ok == 5
        assert daemon.journal.degraded
        assert daemon.health_payload()["journal_degraded"] is True
        assert fib_fingerprint(daemon.verifier) == fib_fingerprint(
            apply_direct(ring_snapshot, batches)
        )
        # The durable prefix survives; the degradation event itself is
        # memory-only (there is nowhere durable left to put it).
        durable = list(read_events(journal))
        assert durable
        assert all(
            e["event"] != EVENT_JOURNAL_DEGRADED for e in durable
        )

    def test_recorder_still_sees_events_after_degradation(
        self, make_daemon, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        daemon, _ = make_daemon(count=5, journal_file=journal)
        plan = FaultPlan(
            FaultSpec("journal_write", action="errno", call=2)
        )
        with inject(plan):
            daemon.run()
        events = [e["event"] for e in daemon.recorder.events()]
        assert EVENT_JOURNAL_DEGRADED in events
        # Disposals kept flowing to the in-memory subscribers.
        assert events.count("committed") == 5
