"""The change-batch stream format: codec, JSONL/directory readers, and
the polling watch source."""

import json

import pytest

from repro.config.changes import (
    AddAclEntry,
    BindAcl,
    CompositeChange,
    EnableInterface,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
)
from repro.config.schema import AclEntry
from repro.net.addr import Prefix
from repro.serve.stream import (
    StreamError,
    decode_batch,
    decode_change,
    encode_batch,
    encode_change,
    read_stream,
    watch_stream,
    write_batch_file,
    write_stream,
)

CHANGES = [
    ShutdownInterface("r0", "eth0"),
    EnableInterface("r1", "eth1"),
    SetOspfCost("r2", "eth0", 42),
    SetLocalPref("r3", "eth1", 250),
    AddAclEntry(
        "r0",
        "edge-in",
        AclEntry(
            seq=10,
            action="deny",
            proto=6,
            src=Prefix.parse("10.1.0.0/16"),
            dst=Prefix.parse("10.2.0.0/16"),
            dst_port=(80, 443),
        ),
    ),
    BindAcl("r0", "eth0", "edge-in", direction="in"),
    CompositeChange(
        [ShutdownInterface("r4", "eth0"), SetOspfCost("r5", "eth1", 7)],
        label="maintenance",
    ),
]


class TestCodec:
    @pytest.mark.parametrize(
        "change", CHANGES, ids=[type(c).__name__ for c in CHANGES]
    )
    def test_round_trip(self, change):
        encoded = encode_change(change)
        json.dumps(encoded)  # must be jsonable as-is
        assert decode_change(encoded) == change

    def test_round_trip_survives_json_text(self):
        text = json.dumps([encode_change(c) for c in CHANGES])
        assert [decode_change(p) for p in json.loads(text)] == CHANGES

    def test_unknown_kind_rejected(self):
        with pytest.raises(StreamError, match="unknown change kind"):
            decode_change({"kind": "TeleportRouter", "device": "r0"})

    def test_unknown_field_rejected(self):
        with pytest.raises(StreamError, match="no field"):
            decode_change(
                {"kind": "ShutdownInterface", "device": "r0", "wat": 1}
            )

    def test_untagged_payload_rejected(self):
        with pytest.raises(StreamError, match="tagged object"):
            decode_change({"device": "r0"})


class TestDecodeBatch:
    def test_good_batch(self):
        payload = encode_batch("000003", CHANGES[:2])
        batch = decode_batch(payload, "fallback")
        assert batch.ok
        assert batch.batch_id == "000003"
        assert batch.changes == CHANGES[:2]
        assert batch.payload == payload

    def test_malformed_batch_never_raises(self):
        batch = decode_batch(["not", "an", "object"], "000009")
        assert not batch.ok
        assert batch.batch_id == "000009"
        assert "not an object" in batch.decode_error

    def test_bad_change_becomes_decode_error(self):
        payload = {"id": "x", "changes": [{"kind": "Nope"}]}
        batch = decode_batch(payload, "x")
        assert not batch.ok
        assert "unknown change kind" in batch.decode_error
        assert batch.payload == payload  # still replayable as-is


class TestStreamFiles:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        assert write_stream([CHANGES[:2], CHANGES[2:4]], path) == 2
        batches = list(read_stream(path))
        assert [b.batch_id for b in batches] == ["000000", "000001"]
        assert batches[0].changes == CHANGES[:2]
        assert batches[1].changes == CHANGES[2:4]

    def test_blank_and_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_stream([CHANGES[:1]], path)
        path.write_text("# a comment\n\n" + path.read_text())
        batches = list(read_stream(path))
        assert len(batches) == 1 and batches[0].ok

    def test_bad_json_line_yields_poison_not_crash(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_stream([CHANGES[:1], CHANGES[1:2]], path)
        lines = path.read_text().splitlines()
        lines.insert(1, "{this is not json")
        path.write_text("\n".join(lines) + "\n")
        batches = list(read_stream(path))
        assert len(batches) == 3
        assert [b.ok for b in batches] == [True, False, True]
        assert "bad JSON" in batches[1].decode_error

    def test_directory_stream_sorted_order(self, tmp_path):
        directory = tmp_path / "batches"
        write_batch_file("b", CHANGES[1:2], directory)
        write_batch_file("a", CHANGES[:1], directory)
        batches = list(read_stream(directory))
        assert [b.batch_id for b in batches] == ["a", "b"]

    def test_missing_stream_raises(self, tmp_path):
        with pytest.raises(StreamError, match="does not exist"):
            read_stream(tmp_path / "ghost.jsonl")


class TestWatchStream:
    def test_yields_none_when_idle_and_stops_on_timeout(self, tmp_path):
        ticks = iter(range(100))
        events = list(
            watch_stream(
                tmp_path, idle_timeout=3, clock=lambda: next(ticks)
            )
        )
        assert events  # polled at least once before giving up
        assert all(event is None for event in events)

    def test_picks_up_files_dropped_between_polls(self, tmp_path):
        polls = {"count": 0}

        def clock():
            polls["count"] += 1
            if polls["count"] == 3:  # producer appears mid-watch
                write_batch_file("late", CHANGES[:1], tmp_path)
            return polls["count"]

        write_batch_file("early", CHANGES[1:2], tmp_path)
        seen = [
            event.batch_id
            for event in watch_stream(tmp_path, idle_timeout=5, clock=clock)
            if event is not None
        ]
        assert seen == ["early", "late"]

    def test_should_stop_wins_immediately(self, tmp_path):
        write_batch_file("x", CHANGES[:1], tmp_path)
        assert (
            list(watch_stream(tmp_path, should_stop=lambda: True)) == []
        )

    def test_never_yields_a_file_twice(self, tmp_path):
        write_batch_file("once", CHANGES[:1], tmp_path)
        ticks = iter(range(100))
        events = [
            event
            for event in watch_stream(
                tmp_path, idle_timeout=4, clock=lambda: next(ticks)
            )
            if event is not None
        ]
        assert [e.batch_id for e in events] == ["once"]
