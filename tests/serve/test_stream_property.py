"""Property: serving a stream through the daemon is equivalent to
applying the batches directly.

For any generated batch sequence — including one with a poison batch
that exhausts its retry budget and lands in the dead-letter directory —
replaying the stream through :class:`ServeDaemon` and then draining the
dead-letter box yields the same final FIB fingerprint as applying every
batch straight through a fresh verifier.  This is the serving layer's
whole correctness contract: fault tolerance must never change *what* is
verified, only *when*.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.realconfig import RealConfig
from repro.net.topologies import ring
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions, fib_fingerprint
from repro.serve.stream import decode_batch, encode_batch
from repro.workloads import ospf_snapshot, stream_batches

LABELED = ring(4)
SNAPSHOT = ospf_snapshot(LABELED)


@st.composite
def scenarios(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=50))
    max_retries = draw(st.integers(min_value=0, max_value=2))
    poison = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=count - 1))
    )
    return count, seed, max_retries, poison


def as_stream(batches):
    """The same encode/decode trip the JSONL file performs."""
    for index, changes in enumerate(batches):
        payload = encode_batch(f"{index:06d}", changes)
        yield decode_batch(payload, f"{index:06d}")


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_daemon_replay_matches_direct_application(tmp_path_factory, scenario):
    count, seed, max_retries, poison = scenario
    batches = stream_batches(LABELED, count=count, seed=seed)
    box = DeadLetterBox(
        tmp_path_factory.mktemp("deadletter") / "dl"
    )
    daemon = ServeDaemon(
        RealConfig(SNAPSHOT),
        as_stream(batches),
        box,
        ServeOptions(
            max_retries=max_retries,
            backoff_base=0.0,
            breaker_threshold=0,  # exact fault-call accounting
        ),
        sleep=lambda seconds: None,
    )
    plan = FaultPlan()
    if poison is not None:
        # Batch `poison` faults on every attempt of its retry budget.
        plan = FaultPlan(
            FaultSpec(
                "generation", call=poison + 1, repeat=max_retries + 1
            )
        )
    with inject(plan):
        stats = daemon.run()

    if poison is None:
        assert stats.quarantined == 0
    else:
        assert stats.quarantined == 1
        assert stats.quarantined_ids == [f"{poison:06d}"]
        assert box.meta(f"{poison:06d}")["attempts"] == max_retries + 1
    assert stats.batches_ok == count - stats.quarantined

    # The daemon's state equals a direct application of the survivors.
    direct = RealConfig(SNAPSHOT)
    for index, changes in enumerate(batches):
        if index != poison:
            direct.apply_changes(changes)
    assert fib_fingerprint(daemon.verifier) == fib_fingerprint(direct)

    # Drain the dead-letter box now that the fault plan is inactive: the
    # replayed payload must decode back to the original changes, and both
    # sides stay in lockstep after applying it.
    for replayed in box.replay():
        assert replayed.ok
        assert replayed.changes == batches[poison]
        daemon.verifier.apply_changes(replayed.changes)
        direct.apply_changes(replayed.changes)
    assert fib_fingerprint(daemon.verifier) == fib_fingerprint(direct)
