"""Tests for the exporters: Chrome trace JSON, Prometheus text, summary."""

import json

import pytest

from repro.telemetry.exporters import (
    chrome_trace,
    chrome_trace_events,
    prometheus_text,
    summary_tree,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, set_tracer, span


@pytest.fixture
def tracer():
    active = Tracer()
    previous = set_tracer(active)
    yield active
    set_tracer(previous)


def record_sample(tracer):
    with span("realconfig.verify", kind="change") as sp:
        sp.set("ok", True)
        with span("realconfig.generation"):
            with span("ddlog.epoch", epoch=2, records=42):
                pass
        with span("realconfig.policy_check"):
            pass
    return tracer


class TestChromeTrace:
    def test_round_trips_through_json_loads(self, tracer):
        record_sample(tracer)
        payload = json.loads(chrome_trace(tracer))
        assert isinstance(payload["traceEvents"], list)
        assert len(payload["traceEvents"]) == 4
        assert payload["displayTimeUnit"] == "ms"

    def test_events_have_trace_viewer_schema(self, tracer):
        record_sample(tracer)
        for event in chrome_trace_events(tracer):
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            assert isinstance(event["args"], dict)

    def test_events_sorted_by_start_and_contained(self, tracer):
        record_sample(tracer)
        events = chrome_trace_events(tracer)
        names = [e["name"] for e in events]
        assert names == [
            "realconfig.verify",
            "realconfig.generation",
            "ddlog.epoch",
            "realconfig.policy_check",
        ]
        root, generation, epoch, _ = events
        # Containment (what the viewer nests by): child inside parent.
        assert root["ts"] <= epoch["ts"]
        assert epoch["ts"] + epoch["dur"] <= root["ts"] + root["dur"] + 1e-6
        assert epoch["args"]["records"] == 42
        assert epoch["args"]["parent_id"] == generation["args"]["span_id"]

    def test_attributes_are_json_safe(self, tracer):
        with span("s", obj=object(), flag=True, none=None):
            pass
        payload = json.loads(chrome_trace(tracer))
        args = payload["traceEvents"][0]["args"]
        assert isinstance(args["obj"], str)
        assert args["flag"] is True
        assert args["none"] is None

    def test_unfinished_spans_are_skipped(self, tracer):
        context = tracer.span("open")
        context.__enter__()
        assert chrome_trace_events(tracer) == []


def parse_exposition(text):
    """Minimal parser of the Prometheus text format: samples + types."""
    samples = {}
    types = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split()
            types[name] = kind
        elif not line.startswith("#"):
            name_and_labels, value = line.rsplit(" ", 1)
            samples[name_and_labels] = float(value)
    return samples, types


class TestPrometheus:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total").inc(3)
        registry.gauge("repro_live").set(1.5)
        samples, types = parse_exposition(prometheus_text(registry))
        assert samples["repro_things_total"] == 3
        assert samples["repro_live"] == 1.5
        assert types["repro_things_total"] == "counter"
        assert types["repro_live"] == "gauge"

    def test_labels_rendered(self):
        registry = MetricsRegistry()
        registry.counter("x_total", stage="diff").inc(2)
        samples, _ = parse_exposition(prometheus_text(registry))
        assert samples['x_total{stage="diff"}'] == 2

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        samples, types = parse_exposition(prometheus_text(registry))
        assert types["repro_lat_seconds"] == "histogram"
        assert samples['repro_lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_lat_seconds_bucket{le="1"}'] == 2
        assert samples['repro_lat_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_lat_seconds_count"] == 3
        assert samples["repro_lat_seconds_sum"] == pytest.approx(2.55)

    def test_known_names_get_help_lines(self):
        from repro.telemetry import names

        registry = MetricsRegistry()
        registry.counter(names.DDLOG_RECORDS).inc()
        text = prometheus_text(registry)
        assert f"# HELP {names.DDLOG_RECORDS} " in text

    def test_deterministic_output(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc(2)
        assert prometheus_text(registry) == prometheus_text(registry)


class TestSummaryTree:
    def test_indentation_follows_nesting(self, tracer):
        record_sample(tracer)
        lines = summary_tree(tracer).splitlines()
        assert lines[0].startswith("realconfig.verify")
        assert lines[1].startswith("  realconfig.generation")
        assert lines[2].startswith("    ddlog.epoch")
        assert lines[3].startswith("  realconfig.policy_check")
        assert all("ms" in line for line in lines)

    def test_attributes_shown_and_suppressible(self, tracer):
        record_sample(tracer)
        assert "records=42" in summary_tree(tracer)
        assert "records=42" not in summary_tree(tracer, attributes=False)
