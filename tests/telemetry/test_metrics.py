"""Tests for the metrics registry: instruments, buckets, no-op mode."""

import pytest

from repro.telemetry.metrics import (
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    set_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("repro_test_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_same_instrument(self, registry):
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_labels_partition_instruments(self, registry):
        a = registry.counter("x_total", stage="diff")
        b = registry.counter("x_total", stage="check")
        a.inc()
        assert b.value == 0
        assert registry.value("x_total", stage="diff") == 1

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("a_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_live")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_value_lookup_unknown_is_none(self, registry):
        assert registry.value("never_touched") is None


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self, registry):
        # Prometheus `le` semantics: an observation equal to a boundary
        # belongs to that boundary's bucket.
        histogram = registry.histogram("h", buckets=[1.0, 2.0, 5.0])
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 7.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]  # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=5: {5.0}
        assert histogram.cumulative() == [2, 4, 5]
        assert histogram.count == 6  # 7.0 only in +Inf
        assert histogram.total == pytest.approx(17.0)

    def test_rejects_unsorted_duplicate_or_empty_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=[])

    def test_redeclare_with_different_buckets_rejected(self, registry):
        registry.histogram("h", buckets=[1.0])
        registry.histogram("h", buckets=[1.0])  # same is fine
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=[1.0, 2.0])


class TestNoOpMode:
    def test_default_global_registry_is_null(self):
        assert isinstance(get_metrics(), NullMetrics)

    def test_null_instruments_absorb_everything(self):
        null = NullMetrics()
        null.counter("a").inc()
        null.gauge("b").set(3)
        null.histogram("c").observe(1.0)
        assert not null.enabled

    def test_set_metrics_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert get_metrics() is registry
        finally:
            set_metrics(previous)
        assert isinstance(get_metrics(), NullMetrics)


class TestIntrospection:
    def test_sorted_listings(self, registry):
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        registry.gauge("g").set(1)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        assert [c.name for c in registry.counters()] == ["a_total", "b_total"]
        assert [g.name for g in registry.gauges()] == ["g"]
        assert [h.name for h in registry.histograms()] == ["h"]
