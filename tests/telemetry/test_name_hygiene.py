"""Span/metric name hygiene: every name used by instrumented code must
come from :mod:`repro.telemetry.names` — no stray string literals — and
the catalogue itself must stay consistent (no duplicate names, journal
event types mirrored into DESIGN.md)."""

import re
from pathlib import Path

from repro.obs import EVENT_TYPES
from repro.telemetry import names

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# The one place literal names are allowed to live.
EXEMPT = {SRC / "telemetry" / "names.py"}

LITERAL_CALL = re.compile(
    r"""(?:\bspan|\.counter|\.gauge|\.histogram)\(\s*["']"""
)


def instrumented_sources():
    for path in sorted(SRC.rglob("*.py")):
        if path in EXEMPT:
            continue
        yield path, path.read_text()


class TestNoStrayLiterals:
    def test_span_and_metric_names_routed_through_catalogue(self):
        offenders = []
        for path, text in instrumented_sources():
            for lineno, line in enumerate(text.splitlines(), 1):
                stripped = line.strip()
                if stripped.startswith("#"):
                    continue
                # Docstring/doc-comment examples show literal names; the
                # telemetry module's own docs are the only such place.
                if path.parent.name == "telemetry" and "with span(" in line:
                    continue
                if LITERAL_CALL.search(line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}")
        assert not offenders, (
            "string-literal span/metric names (route through "
            f"repro.telemetry.names): {offenders}"
        )


class TestCatalogueConsistency:
    def catalogue(self, prefix):
        return {
            key: value
            for key, value in vars(names).items()
            if key.startswith(prefix) and isinstance(value, str)
        }

    def test_span_names_unique(self):
        spans = self.catalogue("SPAN_")
        values = list(spans.values())
        assert len(values) == len(set(values)), "duplicate span names"

    def test_metric_names_unique_and_prometheus_style(self):
        metrics = {
            key: value
            for key, value in vars(names).items()
            if isinstance(value, str)
            and not key.startswith(("SPAN_", "_"))
            and key.isupper()
            and value.startswith("repro_")
        }
        values = list(metrics.values())
        assert len(values) == len(set(values)), "duplicate metric names"
        for value in values:
            assert re.fullmatch(r"[a-z][a-z0-9_]*", value), value

    def test_worker_span_names_share_parallel_prefix(self):
        assert names.SPAN_WORKER.startswith("parallel.")
        assert names.SPAN_WORKER_REPLAY.startswith(names.SPAN_WORKER + ".")
        assert names.SPAN_WORKER_RECLASSIFY.startswith(
            names.SPAN_WORKER + "."
        )


class TestDocsMirrorEventTypes:
    def test_design_documents_every_event_type(self):
        design = (SRC.parents[1] / "DESIGN.md").read_text()
        missing = [
            event for event in EVENT_TYPES if f"`{event}`" not in design
        ]
        assert not missing, (
            f"DESIGN.md is missing journal event types: {missing}"
        )
