"""Cross-process span aggregation: export, graft, and the full pipeline.

The export/graft pair is what lets pool workers ship their span trees
back over the result queue; the integration tests drive a real parallel
verification and assert the acceptance criterion — worker spans appear
*under* the dispatching ``parallel.shard`` span, with per-worker
attribution intact, and survive the Chrome-trace export on per-worker
tid lanes.
"""

import json

import pytest

from repro.core.realconfig import RealConfig
from repro.net.topologies import ring
from repro.telemetry import (
    Tracer,
    chrome_trace,
    export_spans,
    graft_spans,
    names,
    set_tracer,
    span,
)
from repro.telemetry.exporters import chrome_trace_events
from repro.workloads import ospf_snapshot, stream_batches


@pytest.fixture
def tracer():
    active = Tracer()
    previous = set_tracer(active)
    yield active
    set_tracer(previous)


class TestExportGraft:
    def record_worker_tree(self):
        local = Tracer()
        previous = set_tracer(local)
        try:
            with span(names.SPAN_WORKER, worker=1, phase="model"):
                with span(names.SPAN_WORKER_REPLAY, updates=3):
                    pass
                with span(names.SPAN_WORKER_RECLASSIFY, devices=2):
                    pass
        finally:
            set_tracer(previous)
        return export_spans(local)

    def test_export_is_picklable_plain_data(self):
        import pickle

        records = self.record_worker_tree()
        assert pickle.loads(pickle.dumps(records)) == records
        assert {r["name"] for r in records} == {
            names.SPAN_WORKER,
            names.SPAN_WORKER_REPLAY,
            names.SPAN_WORKER_RECLASSIFY,
        }

    def test_graft_reparents_roots_under_parent(self, tracer):
        records = self.record_worker_tree()
        with span("dispatch") as parent:
            grafted = graft_spans(tracer, parent, records, worker=1)
        by_name = {s.name: s for s in grafted}
        root = by_name[names.SPAN_WORKER]
        assert root.parent_id == parent.span_id
        assert root.depth == parent.depth + 1
        # Internal structure preserved: children hang off the new root id.
        child = by_name[names.SPAN_WORKER_REPLAY]
        assert child.parent_id == root.span_id
        assert child.depth == root.depth + 1
        assert child.attributes["updates"] == 3

    def test_graft_assigns_fresh_ids(self, tracer):
        records = self.record_worker_tree()
        with span("dispatch") as parent:
            grafted = graft_spans(tracer, parent, records)
        existing = {parent.span_id}
        for grafted_span in grafted:
            assert grafted_span.span_id not in existing
            existing.add(grafted_span.span_id)

    def test_graft_stamps_extra_attributes_everywhere(self, tracer):
        records = self.record_worker_tree()
        with span("dispatch") as parent:
            grafted = graft_spans(tracer, parent, records, worker=7)
        assert all(s.attributes["worker"] == 7 for s in grafted)

    def test_grafted_spans_land_in_finished(self, tracer):
        records = self.record_worker_tree()
        with span("dispatch") as parent:
            graft_spans(tracer, parent, records)
        finished_names = [s.name for s in tracer.finished]
        assert names.SPAN_WORKER in finished_names


class TestPipelineGrafting:
    """The acceptance criterion, on a real parallel verification."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        labeled = ring(5)
        snapshot = ospf_snapshot(labeled)
        active = Tracer()
        previous = set_tracer(active)
        try:
            verifier = RealConfig(
                snapshot, workers=2, parallel_backend="inline"
            )
            for changes in stream_batches(labeled, count=2, seed=1):
                verifier.apply_changes(changes)
            verifier.close()
        finally:
            set_tracer(previous)
        return active

    def test_worker_spans_nest_under_dispatch_span(self, traced_run):
        tracer = traced_run
        by_id = {s.span_id: s for s in tracer.finished}
        workers = [
            s for s in tracer.finished if s.name == names.SPAN_WORKER
        ]
        assert workers, "no worker spans were grafted"
        for worker_span in workers:
            parent = by_id[worker_span.parent_id]
            assert parent.name in (
                names.SPAN_PARALLEL_SHARD,
                names.SPAN_PARALLEL_SEED,
            )
            # Attribution attributes survived the trip.
            assert worker_span.attributes["worker"] in (0, 1)
            assert worker_span.attributes["phase"] in (
                "seed", "model", "policy",
            )
            assert worker_span.attributes["queue_wait_seconds"] >= 0

    def test_both_workers_and_phases_are_attributed(self, traced_run):
        workers = [
            s
            for s in traced_run.finished
            if s.name == names.SPAN_WORKER
        ]
        assert {s.attributes["worker"] for s in workers} == {0, 1}
        assert {s.attributes["phase"] for s in workers} >= {
            "model", "policy",
        }

    def test_worker_children_preserved(self, traced_run):
        tracer = traced_run
        by_id = {s.span_id: s for s in tracer.finished}
        replay = [
            s
            for s in tracer.finished
            if s.name == names.SPAN_WORKER_REPLAY
        ]
        assert replay
        for child in replay:
            assert by_id[child.parent_id].name == names.SPAN_WORKER

    def test_chrome_trace_puts_workers_on_their_own_lanes(self, traced_run):
        events = chrome_trace_events(traced_run)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        for event in by_name[names.SPAN_WORKER]:
            assert event["tid"] == event["args"]["worker"] + 2
        for event in by_name[names.SPAN_SERVE_BATCH] if (
            names.SPAN_SERVE_BATCH in by_name
        ) else []:
            assert event["tid"] == 1
        # Main-process dispatch spans stay on the main lane.
        for event in by_name[names.SPAN_PARALLEL_SHARD]:
            assert event["tid"] == 1

    def test_chrome_trace_round_trips_with_grafted_spans(self, traced_run):
        payload = json.loads(chrome_trace(traced_run))
        worker_events = [
            e
            for e in payload["traceEvents"]
            if e["name"] == names.SPAN_WORKER
        ]
        assert worker_events
        for event in worker_events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float) and event["dur"] >= 0
            assert isinstance(event["args"]["parent_id"], int)

    def test_grafted_worker_span_contained_in_dispatch_extent(
        self, traced_run
    ):
        """Same-clock-domain check: the worker interval must sit inside
        the dispatching span's wall-clock extent (inline backend: the
        handler runs within the gather)."""
        tracer = traced_run
        by_id = {s.span_id: s for s in tracer.finished}
        for worker_span in tracer.finished:
            if worker_span.name != names.SPAN_WORKER:
                continue
            parent = by_id[worker_span.parent_id]
            assert worker_span.start >= parent.start - 1e-6
            assert worker_span.end <= parent.end + 1e-6
