"""Tests for the span tracer: nesting, parenting, no-op mode, globals."""

import pytest

from repro.telemetry.tracer import (
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture
def tracer():
    active = Tracer()
    previous = set_tracer(active)
    yield active
    set_tracer(previous)


class TestNesting:
    def test_root_span_has_no_parent(self, tracer):
        with span("root"):
            pass
        (root,) = tracer.finished
        assert root.name == "root"
        assert root.parent_id is None
        assert root.depth == 0

    def test_child_parented_to_enclosing_span(self, tracer):
        with span("outer") as outer_span:
            with span("inner"):
                pass
        inner, outer = tracer.finished  # children finish first
        assert inner.name == "inner"
        assert inner.parent_id == outer_span.span_id
        assert inner.depth == 1
        assert outer.parent_id is None

    def test_siblings_share_parent(self, tracer):
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        (root,) = tracer.roots()
        assert [c.name for c in tracer.children_of(root)] == ["a", "b"]

    def test_deep_nesting_depths(self, tracer):
        with span("l0"):
            with span("l1"):
                with span("l2"):
                    pass
        by_name = {s.name: s for s in tracer.finished}
        assert by_name["l0"].depth == 0
        assert by_name["l1"].depth == 1
        assert by_name["l2"].depth == 2
        assert by_name["l2"].parent_id == by_name["l1"].span_id

    def test_sequential_roots_are_independent(self, tracer):
        with span("first"):
            pass
        with span("second"):
            pass
        assert [s.name for s in tracer.roots()] == ["first", "second"]
        assert all(s.parent_id is None for s in tracer.finished)

    def test_durations_are_monotonic_and_nested(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = tracer.finished
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start
        assert outer.end >= inner.end


class TestAttributes:
    def test_kwargs_become_attributes(self, tracer):
        with span("s", kind="initial", n=3):
            pass
        (finished,) = tracer.finished
        assert finished.attributes == {"kind": "initial", "n": 3}

    def test_set_and_add(self, tracer):
        with span("s") as sp:
            sp.set("records", 10)
            sp.add("messages", 2)
            sp.add("messages", 3)
        (finished,) = tracer.finished
        assert finished.attributes["records"] == 10
        assert finished.attributes["messages"] == 5

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (finished,) = tracer.finished
        assert finished.attributes["error"] == "ValueError"
        assert finished.end is not None


class TestNoOpMode:
    def test_default_global_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not tracing_enabled()

    def test_null_span_absorbs_everything_and_records_nothing(self):
        assert isinstance(get_tracer(), NullTracer)
        with span("ignored", attr=1) as sp:
            sp.set("x", 1)
            sp.add("y")
        # Install a real tracer afterwards: nothing leaked into it.
        probe = Tracer()
        previous = set_tracer(probe)
        try:
            assert probe.finished == []
        finally:
            set_tracer(previous)

    def test_null_context_is_reentrant(self):
        with span("a"):
            with span("b"):
                pass  # same shared singleton, must not blow up

    def test_enabled_flags(self):
        assert Tracer().enabled
        assert not NullTracer().enabled


class TestLifecycle:
    def test_set_tracer_returns_previous(self):
        first = Tracer()
        previous = set_tracer(first)
        try:
            assert get_tracer() is first
            second = Tracer()
            assert set_tracer(second) is first
            assert get_tracer() is second
        finally:
            set_tracer(previous)

    def test_reset_clears_state(self, tracer):
        with span("s"):
            pass
        tracer.reset()
        assert tracer.finished == []
        with span("t"):
            pass
        assert tracer.finished[0].span_id == 1

    def test_find(self, tracer):
        with span("x"):
            pass
        with span("x"):
            pass
        with span("y"):
            pass
        assert len(tracer.find("x")) == 2
        assert len(tracer.find("y")) == 1
        assert tracer.find("z") == []
