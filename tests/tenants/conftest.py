"""Fixtures for the multi-tenant service suite.

Fleets are tiny rings so tests isolate the tenancy machinery (LRU,
scheduler, fault domains) rather than verification cost; everything is
deterministic in the seed.
"""

from __future__ import annotations

import pytest

from repro.serve.engine import ServeOptions
from repro.tenants import TenantService, TenantServiceOptions
from repro.workloads.tenants import build_fleet


@pytest.fixture
def make_fleet(tmp_path):
    """Factory: materialize a fleet root, return its path."""

    def build(count=4, total_batches=16, seed=7, **kwargs):
        root = tmp_path / "fleet"
        build_fleet(
            root, count, total_batches=total_batches, seed=seed, **kwargs
        )
        return root

    return build


@pytest.fixture
def make_service():
    """Factory: a TenantService with fast, test-friendly defaults
    (no backoff sleeps, no breaker unless asked)."""

    def build(root, **overrides):
        serve_overrides = overrides.pop("serve", {})
        serve = ServeOptions(
            breaker_threshold=serve_overrides.pop("breaker_threshold", 0),
            backoff_base=serve_overrides.pop("backoff_base", 0.0),
            **serve_overrides,
        )
        options = TenantServiceOptions(
            serve=serve, poll_interval=0.01, **overrides
        )
        return TenantService(root, options)

    return build
