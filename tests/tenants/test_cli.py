"""CLI surface of the multi-tenant service: ``repro serve --tenants``
and ``repro tenant {add,evict,status,replay}``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.workloads.tenants import build_fleet, poison_stream


@pytest.fixture
def fleet(tmp_path):
    root = tmp_path / "fleet"
    build_fleet(root, 3, total_batches=9, seed=21)
    return root


class TestServeTenants:
    def test_clean_fleet_drains_and_exits_zero(self, fleet, capsys):
        assert main(["serve", "--tenants", str(fleet)]) == 0
        out = capsys.readouterr().out
        assert "serving 3 tenant(s)" in out
        assert "serve finished:" in out
        # Every tenant now has a durable checkpoint with its cursor.
        assert main(["tenant", "status", str(fleet)]) == 0
        status = capsys.readouterr().out
        assert "3 tenant(s), 0 degraded" in status
        assert "cursor     0" not in status

    def test_poisoned_fleet_exits_one_and_names_the_tenant(
        self, fleet, capsys
    ):
        poison_stream(fleet / "t002")
        assert main(["serve", "--tenants", str(fleet)]) == 1
        captured = capsys.readouterr()
        assert "degraded tenant t002" in captured.err
        assert "repro tenant replay" in captured.err
        # Offline status sees the dead-letter box and exits 1 too.
        assert main(["tenant", "status", str(fleet)]) == 1
        assert "DEGRADED" in capsys.readouterr().out

    def test_tenants_mode_rejects_single_tenant_args(self, fleet, tmp_path):
        assert main(["serve", str(tmp_path), "--tenants", str(fleet)]) == 2
        assert main(["serve", "--tenants", str(fleet),
                     "--stream", "x.jsonl"]) == 2
        assert main(["serve", "--tenants", str(fleet),
                     "--resume-from", "x.ckpt"]) == 2

    def test_serve_without_snapshot_or_tenants_exits_two(self):
        assert main(["serve"]) == 2

    def test_health_and_journal_files(self, fleet, tmp_path, capsys):
        health = tmp_path / "health.json"
        journal = tmp_path / "journal.jsonl"
        assert main(["serve", "--tenants", str(fleet),
                     "--health-file", str(health),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        payload = json.loads(health.read_text())
        assert payload["status"] == "stopped"
        assert payload["mode"] == "multi-tenant"
        # The journal replays offline through the tail command.
        assert main(["tail", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "tenant-hydrated" in out
        assert "committed" in out


class TestTenantAdmin:
    def test_add_then_serve_then_status(self, tmp_path, capsys):
        root = tmp_path / "fleet"
        root.mkdir()
        assert main(["tenant", "add", str(root), "acme",
                     "--topology", "ring:3", "--batches", "4",
                     "--weight", "2.0"]) == 0
        assert "added tenant acme" in capsys.readouterr().out
        assert (root / "acme" / "tenant.json").exists()
        assert main(["serve", "--tenants", str(root)]) == 0
        capsys.readouterr()
        assert main(["tenant", "status", str(root)]) == 0
        status = capsys.readouterr().out
        assert "acme" in status
        assert "cursor     4" in status

    def test_add_existing_tenant_exits_two(self, fleet):
        assert main(["tenant", "add", str(fleet), "t000"]) == 2

    def test_evict_drops_the_marker(self, fleet, capsys):
        assert main(["tenant", "evict", str(fleet), "t001"]) == 0
        assert "eviction requested" in capsys.readouterr().out
        assert (fleet / "t001" / ".evict").exists()

    def test_replay_empty_box_is_a_clean_noop(self, fleet, capsys):
        assert main(["tenant", "replay", str(fleet), "t000"]) == 0
        assert "dead-letter box is empty" in capsys.readouterr().out

    def test_replay_of_a_still_poison_batch_fails_again(
        self, fleet, capsys
    ):
        poison_stream(fleet / "t000")
        assert main(["serve", "--tenants", str(fleet)]) == 1
        capsys.readouterr()
        # The malformed line is still malformed: replay must exit 1,
        # not pretend the quarantine was transient.
        assert main(["tenant", "replay", str(fleet), "t000"]) == 1
        assert "failed again" in capsys.readouterr().out
