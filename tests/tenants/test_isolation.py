"""The acceptance property for multi-tenant robustness: blast-radius
containment.  Poisoning one tenant's stream AND crash-restarting the
service while that tenant is being served must leave every *other*
tenant's final FIB fingerprint byte-identical to a fault-free run."""

from __future__ import annotations

from repro.resilience.checkpoint import read_checkpoint
from repro.serve.engine import ServeOptions
from repro.serve.stream import fib_fingerprint
from repro.tenants import TenantService, TenantServiceOptions, discover_tenants
from repro.workloads.tenants import build_fleet, poison_stream

TENANTS = 100
TOTAL_BATCHES = 160
SEED = 2020
VICTIM = "t000"  # the zipf head: plenty of batches around the crash


def make_service(root, **overrides):
    options = TenantServiceOptions(
        serve=ServeOptions(breaker_threshold=0, backoff_base=0.0),
        poll_interval=0.01,
        **overrides,
    )
    return TenantService(root, options)


def fleet_fingerprints(root):
    """tenant id -> FIB fingerprint of the tenant's durable final state.
    After a drained run every tenant has been checkpointed at eviction,
    so the checkpoint *is* the tenant's end-of-stream truth."""
    prints = {}
    for config in discover_tenants(root):
        assert config.checkpoint_file.exists(), (
            f"{config.tenant_id} finished a drained run without a "
            "checkpoint"
        )
        prints[config.tenant_id] = fib_fingerprint(
            read_checkpoint(config.checkpoint_file)
        )
    return prints


def test_poison_and_crash_restart_contain_to_one_tenant(tmp_path):
    # Two byte-identical fleets from the same seed.
    clean_root = tmp_path / "clean"
    fault_root = tmp_path / "fault"
    for root in (clean_root, fault_root):
        build_fleet(
            root, TENANTS, total_batches=TOTAL_BATCHES, seed=SEED
        )

    # Arm 1: no faults, straight to drain.
    clean_stats = make_service(clean_root).run()
    clean_prints = fleet_fingerprints(clean_root)
    assert len(clean_prints) == TENANTS

    # Arm 2: poison the victim's stream, then crash the service while
    # the victim is mid-stream and restart it to finish the drain.
    poison_stream(fault_root / VICTIM)
    first = make_service(fault_root)

    def crash_after_victim_commits(event):
        if event.get("event") == "committed" and event.get("tenant") == VICTIM:
            first.request_stop()

    first.journal.subscribe(crash_after_victim_commits)
    first_stats = first.run()
    assert first_stats[VICTIM].batches_seen >= 1
    # The victim still had work pending when the service died.
    total_first = sum(s.batches_seen for s in first_stats.values())
    assert total_first < TOTAL_BATCHES

    second = make_service(fault_root)
    second_stats = second.run()
    fault_prints = fleet_fingerprints(fault_root)

    # The fault landed: the poison batch is quarantined, the victim is
    # the one and only degraded tenant.
    assert second_stats[VICTIM].quarantined == 1
    assert second.tenants_payload()["degraded"] == [VICTIM]

    # Containment: everyone else's final dataplane + verdicts are
    # byte-identical to the fault-free arm.
    mismatched = [
        tid
        for tid in clean_prints
        if tid != VICTIM and fault_prints[tid] != clean_prints[tid]
    ]
    assert mismatched == [], (
        f"fault leaked into {len(mismatched)} other tenant(s): "
        f"{mismatched[:5]}"
    )
    # And no tenant lost or repeated a batch across the crash-restart:
    # the two arms committed the same totals outside the victim.
    for tid, stats in clean_stats.items():
        if tid == VICTIM:
            continue
        served = (
            first_stats[tid].batches_seen + second_stats[tid].batches_seen
        )
        assert served == stats.batches_seen, tid
