"""TenantRegistry: layout, hydration LRU, budget eviction, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.serve.engine import ServeOptions
from repro.tenants import (
    TenantConfig,
    TenantError,
    TenantRegistry,
    discover_tenants,
)
from repro.workloads.tenants import build_fleet, build_tenant


def make_registry(budget=0, breaker_threshold=0):
    return TenantRegistry(
        ServeOptions(breaker_threshold=breaker_threshold, backoff_base=0.0),
        memory_budget_bytes=budget,
    )


class TestLayout:
    def test_discover_finds_only_tenant_dirs(self, tmp_path):
        build_fleet(tmp_path / "fleet", 3, total_batches=3, seed=1)
        (tmp_path / "fleet" / "notes.txt").write_text("not a tenant")
        (tmp_path / "fleet" / "empty-dir").mkdir()
        configs = discover_tenants(tmp_path / "fleet")
        assert [c.tenant_id for c in configs] == ["t000", "t001", "t002"]

    def test_config_roundtrip_preserves_weight(self, tmp_path):
        build_tenant(tmp_path, "acme", weight=2.5, batches=0)
        loaded = TenantConfig.load(tmp_path / "acme")
        assert loaded.tenant_id == "acme"
        assert loaded.weight == 2.5

    def test_dir_without_snapshot_is_rejected(self, tmp_path):
        (tmp_path / "ghost").mkdir()
        with pytest.raises(TenantError):
            TenantConfig.load(tmp_path / "ghost")

    def test_zipf_head_gets_more_batches_than_tail(self, tmp_path):
        build_fleet(tmp_path / "fleet", 4, total_batches=40, seed=2)
        configs = discover_tenants(tmp_path / "fleet")
        sizes = [
            len(c.stream_file.read_text().splitlines()) for c in configs
        ]
        assert sizes[0] > sizes[-1]
        assert all(size >= 1 for size in sizes)


class TestHydration:
    def test_hydrate_builds_from_snapshot_then_serves(self, tmp_path):
        build_fleet(tmp_path / "fleet", 2, total_batches=4, seed=3)
        registry = make_registry()
        for config in discover_tenants(tmp_path / "fleet"):
            registry.register(config)
        engine = registry.hydrate("t000")
        assert engine is registry.hydrate("t000")  # cached, LRU-touched
        assert registry.hydrated_ids == ["t000"]
        assert registry.state("t000").hydrations == 1
        assert registry.state("t000").footprint > 0

    def test_evict_writes_checkpoint_and_rehydrate_restores(self, tmp_path):
        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=4)
        registry = make_registry()
        config = discover_tenants(tmp_path / "fleet")[0]
        state = registry.register(config)
        registry.hydrate("t000")
        state.cursor = 5
        assert registry.evict("t000")
        assert config.checkpoint_file.exists()
        assert not state.hydrated
        assert state.footprint == 0
        # A fresh registry (fresh process) resumes the cursor from disk.
        registry2 = make_registry()
        state2 = registry2.register(TenantConfig.load(config.root))
        assert state2.cursor == 5
        registry2.hydrate("t000")
        assert state2.hydrations == 1

    def test_evict_cold_tenant_is_a_noop(self, tmp_path):
        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=5)
        registry = make_registry()
        registry.register(discover_tenants(tmp_path / "fleet")[0])
        assert registry.evict("t000") is False

    def test_unknown_tenant_raises(self, tmp_path):
        registry = make_registry()
        with pytest.raises(TenantError):
            registry.hydrate("nobody")

    def test_breaker_survives_evict_hydrate_cycle(self, tmp_path):
        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=6)
        registry = make_registry(breaker_threshold=2)
        state = registry.register(discover_tenants(tmp_path / "fleet")[0])
        engine = registry.hydrate("t000")
        assert engine.breaker is state.breaker
        state.breaker.record_failure()
        registry.evict("t000")
        engine2 = registry.hydrate("t000")
        # The tripping breaker cannot be laundered away by an eviction.
        assert engine2.breaker is state.breaker
        assert state.breaker.consecutive_failures == 1


class TestBudgetLRU:
    def test_budget_evicts_least_recently_served(self, tmp_path):
        build_fleet(tmp_path / "fleet", 3, total_batches=3, seed=7)
        registry = make_registry()
        for config in discover_tenants(tmp_path / "fleet"):
            registry.register(config)
        # Footprints settle after the first evict/rehydrate cycle (the
        # checkpoint round-trip adds a little state): warm up once, then
        # measure, then impose a budget that fits exactly {t000, t002}.
        footprints = {}
        for _ in range(2):
            for tid in ("t000", "t001", "t002"):
                registry.hydrate(tid)
                footprints[tid] = registry.state(tid).footprint
            registry.evict_all()
        registry.memory_budget_bytes = (
            footprints["t000"] + footprints["t002"] + 1
        )
        evictions_before = registry.state("t001").evictions
        registry.hydrate("t000")
        registry.hydrate("t001")
        registry.hydrate("t000")  # touch: t001 becomes LRU-oldest
        registry.hydrate("t002")  # over budget -> evicts t001, not t000
        assert "t001" not in registry.hydrated_ids
        assert "t000" in registry.hydrated_ids
        assert "t002" in registry.hydrated_ids
        assert registry.state("t001").evictions == evictions_before + 1
        assert registry.state("t001").config.checkpoint_file.exists()

    def test_just_hydrated_tenant_is_never_the_victim(self, tmp_path):
        build_fleet(tmp_path / "fleet", 2, total_batches=2, seed=8)
        registry = make_registry(budget=1)  # nothing fits
        for config in discover_tenants(tmp_path / "fleet"):
            registry.register(config)
        registry.hydrate("t000")
        # t000 alone is over budget but must stay (it is being served).
        assert registry.hydrated_ids == ["t000"]
        registry.hydrate("t001")
        assert registry.hydrated_ids == ["t001"]

    def test_evict_all_releases_everyone(self, tmp_path):
        build_fleet(tmp_path / "fleet", 3, total_batches=3, seed=9)
        registry = make_registry()
        for config in discover_tenants(tmp_path / "fleet"):
            registry.register(config)
            registry.hydrate(config.tenant_id)
        assert registry.evict_all() == 3
        assert registry.hydrated_ids == []
        assert registry.total_footprint() == 0


class TestSingleFlight:
    def test_thundering_herd_coalesces_to_one_restore(self, tmp_path):
        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=10)
        registry = make_registry()
        registry.register(discover_tenants(tmp_path / "fleet")[0])
        engines = []
        errors = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            try:
                engines.append(registry.hydrate("t000"))
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(engines) == 8
        assert len({id(engine) for engine in engines}) == 1
        assert registry.restores_performed == 1
        assert registry.state("t000").hydrations == 1

    def test_waiters_share_the_leaders_exception(self, tmp_path):
        build_fleet(tmp_path / "fleet", 1, total_batches=2, seed=11)
        registry = make_registry()
        config = discover_tenants(tmp_path / "fleet")[0]
        registry.register(config)
        # Corrupt checkpoint: every hydration must fail, and concurrent
        # callers must all see the failure (not hang).
        config.checkpoint_file.write_bytes(b"garbage")
        errors = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            try:
                registry.hydrate("t000")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(errors) == 4
