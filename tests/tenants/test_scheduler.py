"""Admission control + weighted-fair scheduling invariants."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.tenants import FairScheduler, TenantQueue


class TestTenantQueue:
    def test_fifo_order(self):
        queue = TenantQueue(4)
        for item in "abc":
            assert queue.push(item)
        assert [queue.pop(), queue.pop(), queue.pop()] == ["a", "b", "c"]

    def test_full_queue_sheds(self):
        queue = TenantQueue(2)
        assert queue.push(1) and queue.push(2)
        assert queue.push(3) is False  # load-shed, not growth
        assert len(queue) == 2
        queue.pop()
        assert queue.push(3)  # room again -> admitted

    def test_free_tracks_capacity(self):
        queue = TenantQueue(3)
        assert queue.free == 3
        queue.push("x")
        assert queue.free == 2
        assert queue.clear() == 1
        assert queue.free == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantQueue(0)


class TestFairScheduler:
    def test_service_converges_to_weight_ratios(self):
        scheduler = FairScheduler()
        scheduler.register("heavy", 3.0)
        scheduler.register("light", 1.0)
        served = Counter(
            scheduler.next_tenant(["heavy", "light"]) for _ in range(400)
        )
        # 3:1 weights -> 300:100 service, exactly, by credit accounting.
        assert served["heavy"] == 300
        assert served["light"] == 100

    def test_no_starvation_under_extreme_skew(self):
        scheduler = FairScheduler()
        scheduler.register("whale", 99.0)
        scheduler.register("shrimp", 1.0)
        served = Counter(
            scheduler.next_tenant(["whale", "shrimp"]) for _ in range(500)
        )
        assert served["shrimp"] >= 4  # 1% share of 500, not zero

    def test_only_ready_tenants_are_served(self):
        scheduler = FairScheduler()
        for tid in ("a", "b", "c"):
            scheduler.register(tid)
        assert scheduler.next_tenant(["b"]) == "b"
        assert scheduler.next_tenant([]) is None
        assert scheduler.next_tenant(["zz-unknown"]) is None

    def test_idle_tenants_bank_no_credit(self):
        scheduler = FairScheduler()
        scheduler.register("a", 1.0)
        scheduler.register("b", 1.0)
        # b idles while a is served many times...
        for _ in range(50):
            assert scheduler.next_tenant(["a"]) == "a"
        # ...then returns: it must not get a 50-round catch-up burst.
        served = [scheduler.next_tenant(["a", "b"]) for _ in range(10)]
        assert served.count("b") <= 6

    def test_deterministic_given_same_sequence(self):
        def run():
            scheduler = FairScheduler()
            scheduler.register("x", 2.0)
            scheduler.register("y", 1.5)
            scheduler.register("z", 1.0)
            return [
                scheduler.next_tenant(["x", "y", "z"]) for _ in range(30)
            ]

        assert run() == run()

    def test_remove_unregisters(self):
        scheduler = FairScheduler()
        scheduler.register("a")
        scheduler.remove("a")
        assert "a" not in scheduler
        assert scheduler.next_tenant(["a"]) is None

    def test_duplicate_or_bad_weight_rejected(self):
        scheduler = FairScheduler()
        scheduler.register("a")
        with pytest.raises(ValueError):
            scheduler.register("a")
        with pytest.raises(ValueError):
            scheduler.register("b", 0.0)
