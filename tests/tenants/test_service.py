"""TenantService: the loop, admission, controls, shutdown, introspection."""

from __future__ import annotations

import json
import threading

from repro.serve.stream import ChangeBatch, read_stream
from repro.tenants import TenantService, discover_tenants
from repro.workloads.tenants import build_tenant, poison_stream


def stream_length(config) -> int:
    return sum(1 for _ in read_stream(config.stream_file))


class TestDrainRun:
    def test_serves_every_tenant_to_exhaustion(self, make_fleet, make_service):
        root = make_fleet(count=3, total_batches=12)
        service = make_service(root)
        stats = service.run()
        for config in discover_tenants(root):
            expected = stream_length(config)
            assert stats[config.tenant_id].batches_ok == expected
            assert stats[config.tenant_id].quarantined == 0
        assert service.registry.hydrated_ids == []  # all evicted on stop

    def test_resume_after_stop_loses_and_repeats_nothing(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=2, total_batches=8)
        expected = {
            c.tenant_id: stream_length(c) for c in discover_tenants(root)
        }
        service = make_service(root)
        # Stop mid-run: request_stop after the third commit (the journal
        # subscriber fires synchronously inside the serving loop).
        commits = []

        def stop_after_three(event):
            if event.get("event") == "committed":
                commits.append(event)
                if len(commits) == 3:
                    service.request_stop()

        service.journal.subscribe(stop_after_three)
        first = service.run()
        done_first = {
            tid: stats.batches_seen for tid, stats in first.items()
        }
        assert sum(done_first.values()) == 3
        # A fresh service (fresh process) resumes from the checkpoints.
        service2 = make_service(root)
        second = service2.run()
        for tid, total in expected.items():
            assert (
                done_first[tid] + second[tid].batches_seen == total
            ), f"{tid} lost or repeated a batch across restart"

    def test_journal_events_are_tenant_tagged(self, make_fleet, make_service):
        root = make_fleet(count=2, total_batches=6)
        journal_file = root / "journal.jsonl"
        service = make_service(root, journal_file=journal_file)
        service.run()
        events = [
            json.loads(line)
            for line in journal_file.read_text().splitlines()
        ]
        committed = [e for e in events if e["event"] == "committed"]
        assert committed
        for event in committed:
            assert event["tenant"].startswith("t")
            assert event["cid"].startswith(event["tenant"] + ":")
        assert {e["event"] for e in events} >= {
            "daemon-start",
            "daemon-stop",
            "tenant-hydrated",
            "tenant-evicted",
        }


class TestFaultContainment:
    def test_poison_stream_degrades_only_its_tenant(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=3, total_batches=9)
        poison_stream(root / "t001")
        service = make_service(root)
        stats = service.run()
        assert stats["t001"].quarantined == 1
        assert stats["t000"].quarantined == 0
        assert stats["t002"].quarantined == 0
        payload = service.tenants_payload()
        assert payload["degraded"] == ["t001"]
        # The poison batch sits in t001's private dead-letter box.
        box = discover_tenants(root)[1].deadletter_dir
        assert box.is_dir() and any(box.iterdir())

    def test_hydration_failure_marks_tenant_failed_not_service(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=3, total_batches=9)
        (root / "t002" / "checkpoint.ckpt").write_bytes(b"corrupt")
        service = make_service(root)
        stats = service.run()
        assert service.registry.state("t002").failed
        assert stats["t000"].batches_ok > 0
        assert stats["t001"].batches_ok > 0
        events = [e["event"] for e in service.recorder.events(0)]
        assert "tenant-failed" in events

    def test_failed_tenant_checkpoint_keeps_committed_cursor(
        self, make_fleet, make_service, monkeypatch
    ):
        root = make_fleet(count=1, total_batches=6)
        service = make_service(root, checkpoint_every=1)
        state = service.registry.state("t000")
        # Blow up the tenant after its third commit.
        real_hydrate = service.registry.hydrate

        def exploding_hydrate(tenant_id):
            if state.stats.batches_ok >= 3:
                raise RuntimeError("simulated engine loss")
            return real_hydrate(tenant_id)

        monkeypatch.setattr(service.registry, "hydrate", exploding_hydrate)
        service.run()
        assert state.failed
        from repro.resilience.checkpoint import read_checkpoint_extras

        extras = read_checkpoint_extras(state.config.checkpoint_file)
        assert extras["serve"]["cursor"] == 3


class TestAdmission:
    def test_submit_sheds_when_queue_full(self, make_fleet, make_service):
        root = make_fleet(count=1, total_batches=2)
        service = make_service(root, tenant_queue_capacity=2)
        batch = ChangeBatch(batch_id="push-0", changes=[], payload={})
        assert service.submit("t000", batch)
        assert service.submit("t000", batch)
        assert service.submit("t000", batch) is False  # full -> shed
        assert service.registry.state("t000").shed == 1
        events = service.recorder.events(0)
        assert any(e["event"] == "load-shed" for e in events)

    def test_submit_to_failed_tenant_sheds(self, make_fleet, make_service):
        root = make_fleet(count=1, total_batches=2)
        service = make_service(root)
        service.registry.state("t000").failed = True
        batch = ChangeBatch(batch_id="push-1", changes=[], payload={})
        assert service.submit("t000", batch) is False


class TestControls:
    def test_evict_marker_releases_tenant_mid_run(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=2, total_batches=10)
        service = make_service(root, control_scan_every=1)
        marker_dropped = []

        def drop_marker(event):
            if event.get("event") == "committed" and not marker_dropped:
                (root / "t000" / ".evict").touch()
                marker_dropped.append(True)

        service.journal.subscribe(drop_marker)
        service.run()
        state = service.registry.state("t000")
        # Evicted by the control scan (reason=request), then rehydrated
        # to finish its stream, then evicted again at shutdown.
        events = service.recorder.events(0)
        requests = [
            e
            for e in events
            if e["event"] == "tenant-evicted"
            and e.get("reason") == "request"
            and e["tenant"] == "t000"
        ]
        assert requests
        assert state.stats.batches_ok > 0
        assert not (root / "t000" / ".evict").exists()  # consumed

    def test_new_tenant_directory_is_admitted_mid_run(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=1, total_batches=4)
        service = make_service(root, control_scan_every=1)
        added = []

        def add_tenant(event):
            if event.get("event") == "committed" and not added:
                build_tenant(root, "late", batches=2, seed=99)
                added.append(True)

        service.journal.subscribe(add_tenant)
        stats = service.run()
        assert "late" in stats
        assert stats["late"].batches_ok == 2


class TestShutdown:
    def test_stop_during_inflight_restore_leaves_valid_cursor(
        self, make_fleet, make_service, monkeypatch
    ):
        """SIGTERM arriving while a tenant restore is in flight must not
        corrupt the cursor: the restore finishes, the popped batch is
        served, and the shutdown checkpoint records exactly what was
        disposed — a restarted service neither loses nor repeats."""
        import repro.tenants.registry as registry_mod

        root = make_fleet(count=2, total_batches=8)
        expected = {
            c.tenant_id: stream_length(c) for c in discover_tenants(root)
        }
        service = make_service(root)
        restore_started = threading.Event()
        release_restore = threading.Event()
        real_realconfig = registry_mod.RealConfig

        class SlowRealConfig(real_realconfig):
            def __init__(self, *args, **kwargs):
                restore_started.set()
                assert release_restore.wait(timeout=30)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(registry_mod, "RealConfig", SlowRealConfig)
        runner = threading.Thread(target=service.run)
        runner.start()
        assert restore_started.wait(timeout=30)
        service.request_stop()  # the SIGTERM, mid-restore
        release_restore.set()
        runner.join(timeout=60)
        assert not runner.is_alive()
        # Exactly one batch was disposed (the one in flight when the
        # stop arrived), and its tenant's checkpoint cursor says so.
        from repro.resilience.checkpoint import read_checkpoint_extras

        disposed = {
            state.tenant_id: state.stats.batches_seen
            for state in service.registry.states()
        }
        assert sum(disposed.values()) == 1
        for state in service.registry.states():
            if state.config.checkpoint_file.exists():
                extras = read_checkpoint_extras(state.config.checkpoint_file)
                assert extras["serve"]["cursor"] == disposed[state.tenant_id]
        # Restart without the slow restore: the fleet finishes exactly.
        monkeypatch.setattr(registry_mod, "RealConfig", real_realconfig)
        service2 = make_service(root)
        second = service2.run()
        for tid, total in expected.items():
            assert disposed[tid] + second[tid].batches_seen == total


class TestIntrospection:
    def test_tenants_endpoint_serves_fleet_state(
        self, make_fleet, make_service
    ):
        import urllib.request

        root = make_fleet(count=2, total_batches=4)
        service = make_service(root, obs_port=0)
        url = service.obs_server.url
        try:
            with urllib.request.urlopen(url + "/tenants") as response:
                payload = json.loads(response.read())
            assert payload["registered"] == 2
            assert [t["tenant"] for t in payload["tenants"]] == [
                "t000",
                "t001",
            ]
            assert payload["memory"]["budget_bytes"] == 0
        finally:
            service.run()  # drains and stops the obs server

    def test_single_tenant_daemon_answers_404_on_tenants(self, tmp_path):
        import urllib.error
        import urllib.request

        from repro.obs import IntrospectionServer, ObsState

        state = ObsState(
            health=lambda: {}, stats=lambda: {}, events_since=lambda s: []
        )
        server = IntrospectionServer(state, port=0).start()
        try:
            try:
                urllib.request.urlopen(server.url + "/tenants")
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404
        finally:
            server.stop()

    def test_health_and_summary_aggregate_fleet(
        self, make_fleet, make_service
    ):
        root = make_fleet(count=2, total_batches=6)
        poison_stream(root / "t001")
        health_file = root / "health.json"
        service = make_service(root, health_file=health_file)
        service.run()
        health = json.loads(health_file.read_text())
        assert health["status"] == "stopped"
        assert health["mode"] == "multi-tenant"
        assert health["tenants"] == 2
        assert health["quarantined"] == 1
        assert health["degraded"] == 1
        assert "1 degraded" in service.summary()
