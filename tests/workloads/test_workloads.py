"""Tests for workload generators: configs, change generators, sweeps."""

import pytest

from repro.config.changes import SetLocalPref, SetOspfCost
from repro.net.topologies import line
from repro.workloads import (
    acl_changes,
    asn_map,
    bgp_snapshot,
    lc_changes,
    link_failures,
    linked_interfaces,
    lp_changes,
    ospf_snapshot,
    paper_changes,
    snapshot_for,
)
from repro.workloads.specmining import from_scratch_sweep, incremental_sweep


class TestConfigSynthesis:
    def test_ospf_every_interface_enabled(self, fattree4):
        snapshot = ospf_snapshot(fattree4)
        for device in snapshot.iter_devices():
            assert device.ospf is not None
            assert all(i.ospf_enabled for i in device.interfaces.values())

    def test_ospf_custom_cost(self, fattree4):
        snapshot = ospf_snapshot(fattree4, link_cost=7)
        device = snapshot.device("core0")
        assert all(i.ospf_cost == 7 for i in device.interfaces.values())

    def test_bgp_one_as_per_node(self, fattree4):
        snapshot = bgp_snapshot(fattree4)
        asns = {d.bgp.asn for d in snapshot.iter_devices()}
        assert len(asns) == fattree4.topology.num_nodes()

    def test_bgp_peers_on_every_link(self, fattree4):
        snapshot = bgp_snapshot(fattree4)
        total_neighbors = sum(
            len(d.bgp.neighbors) for d in snapshot.iter_devices()
        )
        assert total_neighbors == 2 * fattree4.topology.num_links()

    def test_bgp_remote_as_matches_peer(self, fattree4):
        snapshot = bgp_snapshot(fattree4)
        asns = asn_map(fattree4)
        topo = fattree4.topology
        for device in snapshot.iter_devices():
            for neighbor in device.bgp.neighbors.values():
                peer = topo.neighbor_of(
                    topo.node(device.hostname).interface(neighbor.interface).id
                )
                assert neighbor.remote_as == asns[peer.node]

    def test_edge_nodes_originate_prefixes(self, fattree4):
        snapshot = bgp_snapshot(fattree4)
        for edge in fattree4.edge_nodes():
            assert snapshot.device(edge).bgp.networks

    def test_snapshot_for_dispatch(self, fattree4):
        assert snapshot_for(fattree4, "ospf").device("core0").ospf is not None
        assert snapshot_for(fattree4, "bgp").device("core0").bgp is not None
        with pytest.raises(ValueError):
            snapshot_for(fattree4, "rip")

    def test_snapshots_validate(self, fattree4):
        snapshot_for(fattree4, "ospf").validate()
        snapshot_for(fattree4, "bgp").validate()


class TestChangeGenerators:
    def test_linked_interfaces_excludes_stubs(self, fattree4):
        interfaces = linked_interfaces(fattree4)
        assert all(i.name != "host0" for i in interfaces)
        assert len(interfaces) == 2 * fattree4.topology.num_links()

    def test_link_failures_deterministic(self, fattree4):
        assert link_failures(fattree4, count=5, seed=1) == link_failures(
            fattree4, count=5, seed=1
        )

    def test_link_failures_distinct_links(self, fattree4):
        failures = link_failures(fattree4, count=10, seed=2)
        assert len({(f.device, f.interface) for f in failures}) == 10

    def test_lc_changes_value(self, fattree4):
        changes = lc_changes(fattree4, count=3, seed=0)
        assert all(isinstance(c, SetOspfCost) and c.cost == 100 for c in changes)

    def test_lp_changes_value(self, fattree4):
        changes = lp_changes(fattree4, count=3, seed=0)
        assert all(
            isinstance(c, SetLocalPref) and c.local_pref == 150 for c in changes
        )

    def test_paper_changes_kinds(self, fattree4):
        ospf = paper_changes(fattree4, "ospf", count=2)
        assert {kind for kind, _ in ospf} == {"LinkFailure", "LC"}
        bgp = paper_changes(fattree4, "bgp", count=2)
        assert {kind for kind, _ in bgp} == {"LinkFailure", "LP"}
        with pytest.raises(ValueError):
            paper_changes(fattree4, "rip", count=1)

    def test_changes_apply_cleanly(self, fattree4):
        from repro.config.changes import apply_changes

        snapshot = ospf_snapshot(fattree4)
        for kind, change in paper_changes(fattree4, "ospf", count=3):
            apply_changes(snapshot, [change])

    def test_acl_changes_apply_and_bind(self, fattree4):
        from repro.config.changes import apply_changes

        snapshot = ospf_snapshot(fattree4)
        changes = acl_changes(fattree4, count=3, seed=5)
        assert len(changes) == 3
        for composite in changes:
            snapshot, diff = apply_changes(snapshot, [composite])
            assert not diff.is_empty()
        bound = [
            iface
            for device in snapshot.iter_devices()
            for iface in device.interfaces.values()
            if iface.acl_in is not None
        ]
        assert len(bound) == 3

    def test_acl_changes_verified_end_to_end(self, fattree4):
        from repro.core.realconfig import RealConfig
        from repro.policy.spec import LoopFree

        snapshot = ospf_snapshot(fattree4)
        verifier = RealConfig(
            snapshot,
            endpoints=fattree4.edge_nodes(),
            policies=[LoopFree("loop-free")],
        )
        for composite in acl_changes(fattree4, count=2, seed=6):
            delta = verifier.apply_change(composite)
            # The deny ACL produces filter-rule updates, not engine work.
            assert any(
                not hasattr(u.rule, "prefix") for u in delta.rule_updates
            )


class TestSpecMiningSweep:
    def test_sweeps_agree_on_fib_signatures(self):
        labeled = line(4)
        snapshot = ospf_snapshot(labeled)
        incremental = incremental_sweep(labeled, snapshot, limit=3)
        scratch = from_scratch_sweep(labeled, snapshot, limit=3)
        assert incremental.conditions == scratch.conditions == 3
        assert incremental.fib_signatures == scratch.fib_signatures

    def test_sweep_covers_every_link(self):
        labeled = line(4)
        snapshot = ospf_snapshot(labeled)
        result = incremental_sweep(labeled, snapshot)
        assert result.conditions == labeled.topology.num_links()

    def test_summary_format(self):
        labeled = line(3)
        result = incremental_sweep(labeled, ospf_snapshot(labeled), limit=1)
        assert "incremental" in result.summary()
        assert result.per_condition_seconds > 0
